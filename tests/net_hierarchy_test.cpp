#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "net/shortest_paths.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace net = fap::net;
using fap::util::PreconditionError;

TEST(HierarchySpec, NodeCountAndOffsets) {
  net::HierarchySpec spec;
  spec.fanout = {2, 3};
  spec.tier_cost = {4.0, 1.0};
  EXPECT_EQ(spec.depth(), 2u);
  EXPECT_EQ(spec.node_count(), 1u + 2u + 6u);
  const std::vector<std::size_t> offsets = spec.level_offsets();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 1u);
  EXPECT_EQ(offsets[2], 3u);
  EXPECT_EQ(offsets[3], 9u);
}

TEST(HierarchySpec, ValidationRejectsDegenerateSpecs) {
  net::HierarchySpec spec;
  EXPECT_THROW(spec.validate(), PreconditionError);  // no tiers

  spec.fanout = {2};
  spec.tier_cost = {1.0, 2.0};
  EXPECT_THROW(spec.validate(), PreconditionError);  // length mismatch

  spec.tier_cost = {0.0};
  EXPECT_THROW(spec.validate(), PreconditionError);  // zero cost

  spec.tier_cost = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW(spec.validate(), PreconditionError);  // infinite cost

  spec.tier_cost = {1.0};
  spec.fanout = {0};
  EXPECT_THROW(spec.validate(), PreconditionError);  // zero fanout

  // Node count overflow: fanout^depth blows past size_t.
  spec.fanout.assign(9, 1u << 20);
  spec.tier_cost.assign(9, 1.0);
  EXPECT_THROW(spec.validate(), PreconditionError);
}

TEST(FatTree, ShapeAndTierCosts) {
  const net::TieredNetwork tiered = net::make_fat_tree(3, 3);
  EXPECT_EQ(tiered.topology.node_count(), 1u + 3u + 9u + 27u);
  EXPECT_EQ(tiered.topology.edge_count(), tiered.topology.node_count() - 1);
  EXPECT_TRUE(tiered.topology.connected());
  // Leaf links cost 1, halving toward the root: {1/4, 1/2, 1}.
  ASSERT_EQ(tiered.spec.tier_cost.size(), 3u);
  EXPECT_EQ(tiered.spec.tier_cost[0], 0.25);
  EXPECT_EQ(tiered.spec.tier_cost[1], 0.5);
  EXPECT_EQ(tiered.spec.tier_cost[2], 1.0);
  EXPECT_THROW(net::make_fat_tree(0), PreconditionError);
  EXPECT_THROW(net::make_fat_tree(2, 0), PreconditionError);
}

TEST(GeoTiers, ShapeAndDefaults) {
  const net::TieredNetwork tiered = net::make_geo_tiers(2, 3, 2);
  // 1 core + 2 regions + 6 DCs + 12 racks.
  EXPECT_EQ(tiered.topology.node_count(), 21u);
  EXPECT_EQ(tiered.topology.edge_count(), 20u);
  EXPECT_TRUE(tiered.topology.connected());
  ASSERT_EQ(tiered.spec.fanout.size(), 3u);
  EXPECT_EQ(tiered.spec.fanout[0], 2u);  // regions
  EXPECT_EQ(tiered.spec.fanout[1], 3u);  // dcs per region
  EXPECT_EQ(tiered.spec.fanout[2], 2u);  // racks per dc
  EXPECT_EQ(tiered.spec.tier_cost[0], 8.0);
  EXPECT_EQ(tiered.spec.tier_cost[1], 2.0);
  EXPECT_EQ(tiered.spec.tier_cost[2], 0.5);
  EXPECT_THROW(net::make_geo_tiers(0, 1, 1), PreconditionError);
}

// The implicit provider's LCA arithmetic must reproduce Dijkstra on the
// explicit tree EXACTLY (same bytes, not just same values): Dijkstra's
// dist is the left-to-right fold of link costs in path order, and the
// provider accumulates in that same order.
void expect_hierarchical_matches_dijkstra(const net::TieredNetwork& tiered) {
  const net::HierarchicalCostProvider provider(tiered.spec);
  const net::CostMatrix dense =
      net::all_pairs_shortest_paths(tiered.topology);
  const std::size_t n = dense.node_count();
  ASSERT_EQ(provider.node_count(), n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(provider.cost(i, j), dense(i, j)) << i << " -> " << j;
    }
  }
}

TEST(HierarchicalCostProvider, MatchesDijkstraOnFatTree) {
  expect_hierarchical_matches_dijkstra(net::make_fat_tree(3, 3));
}

TEST(HierarchicalCostProvider, MatchesDijkstraOnGeoTiers) {
  expect_hierarchical_matches_dijkstra(net::make_geo_tiers(3, 2, 3));
}

TEST(HierarchicalCostProvider, MatchesDijkstraOnUnaryPath) {
  // fanout 1 everywhere: a 6-node path — the deepest-LCA corner (every
  // pair's route passes through the root's single chain).
  expect_hierarchical_matches_dijkstra(net::make_fat_tree(1, 5));
}

TEST(HierarchicalCostProvider, RowsMatchPairCosts) {
  const net::TieredNetwork tiered = net::make_geo_tiers(2, 2, 2);
  const net::HierarchicalCostProvider provider(tiered.spec);
  const std::size_t n = provider.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const net::CostRow row = provider.row(i);
    ASSERT_EQ(row.size(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(row[j], provider.cost(i, j));
    }
    EXPECT_EQ(row[i], 0.0);
  }
}

// --- Generator boundary contracts (grid / Erdős–Rényi). ---

TEST(MakeGrid, RejectsDegenerateShapes) {
  EXPECT_THROW(net::make_grid(0, 5), PreconditionError);
  EXPECT_THROW(net::make_grid(5, 0), PreconditionError);
  EXPECT_THROW(net::make_grid(1, 1), PreconditionError);  // no links
  // rows*cols would wrap around std::size_t without the overflow guard.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(net::make_grid(huge, 4), PreconditionError);
  EXPECT_THROW(net::make_grid(2, 2, 0.0), PreconditionError);
  EXPECT_THROW(net::make_grid(2, 2, -1.0), PreconditionError);
  EXPECT_THROW(net::make_grid(2, 2, std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(
      net::make_grid(2, 2, std::numeric_limits<double>::quiet_NaN()),
      PreconditionError);
}

TEST(MakeGrid, AcceptsBoundaryShapes) {
  // 1×2 is the smallest legal grid; 1×n degenerates to a line.
  const net::Topology tiny = net::make_grid(1, 2);
  EXPECT_EQ(tiny.node_count(), 2u);
  EXPECT_EQ(tiny.edge_count(), 1u);
  const net::Topology line = net::make_grid(1, 5);
  EXPECT_EQ(line.edge_count(), 4u);
  EXPECT_TRUE(line.connected());
}

TEST(MakeErdosRenyi, RejectsDegenerateParameters) {
  fap::util::Rng rng(3);
  EXPECT_THROW(net::make_erdos_renyi(1, 0.5, 1.0, 2.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, -0.1, 1.0, 2.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, 1.1, 1.0, 2.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(
                   8, std::numeric_limits<double>::quiet_NaN(), 1.0, 2.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, 0.5, 0.0, 2.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, 0.5, 2.0, 1.0, rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, 0.5, 1.0,
                                     std::numeric_limits<double>::infinity(),
                                     rng),
               PreconditionError);
  EXPECT_THROW(net::make_erdos_renyi(8, 0.5, 1.0, 2.0, rng,
                                     /*max_attempts=*/0),
               PreconditionError);
}

TEST(MakeErdosRenyi, BoundaryProbabilitiesStayConnected) {
  fap::util::Rng sparse_rng(5);
  // p = 0 never connects by sampling: the spanning-chain fallback must
  // still deliver a connected graph after max_attempts exhausts.
  const net::Topology sparse =
      net::make_erdos_renyi(12, 0.0, 1.0, 2.0, sparse_rng, 2);
  EXPECT_TRUE(sparse.connected());
  EXPECT_EQ(sparse.edge_count(), 11u);  // exactly the chain

  fap::util::Rng dense_rng(5);
  const net::Topology dense =
      net::make_erdos_renyi(6, 1.0, 1.0, 2.0, dense_rng);
  EXPECT_TRUE(dense.connected());
  EXPECT_EQ(dense.edge_count(), 15u);  // complete graph
}

}  // namespace
