// The paper's appendix as executable mathematics: Lemma 1 and the four
// theorems, checked directly against the implementation rather than only
// through end-to-end behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

// --- Lemma 1: Σ a_i (a_i - avg) = Σ (a_i - avg)² >= 0 ---------------------

TEST(Lemma1, IdentityHoldsForRandomVectors) {
  fap::util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(10);
    std::vector<double> a(n);
    for (double& value : a) {
      value = rng.uniform(-10.0, 10.0);
    }
    const double avg = fap::util::sum(a) / static_cast<double>(n);
    double lhs = 0.0;
    double rhs = 0.0;
    for (const double value : a) {
      lhs += value * (value - avg);
      rhs += (value - avg) * (value - avg);
    }
    EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::fabs(rhs)));
    EXPECT_GE(lhs, -1e-12);
  }
}

TEST(Lemma1, ZeroExactlyWhenAllEqual) {
  const std::vector<double> equal(5, 3.7);
  const double avg = 3.7;
  double sum = 0.0;
  for (const double value : equal) {
    sum += value * (value - avg);
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

// --- Theorem 1: Σ Δx_i = 0 at every step ----------------------------------

TEST(Theorem1, StepDeltasSumToZeroExactly) {
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    const core::SingleFileModel model(
        fap::testing::random_single_file_problem(seed, 6));
    core::AllocatorOptions options;
    options.alpha = 0.2;
    const core::ResourceDirectedAllocator allocator(model, options);
    std::vector<double> x = fap::testing::random_feasible(model, seed + 2);
    for (int step = 0; step < 25; ++step) {
      const auto outcome = allocator.step(x);
      if (outcome.terminal) {
        break;
      }
      double delta_sum = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        delta_sum += outcome.x[i] - x[i];
      }
      EXPECT_NEAR(delta_sum, 0.0, 1e-12) << "seed " << seed;
      x = outcome.x;
    }
  }
}

// --- Theorem 2: ΔU > 0 for α below the derived bound ----------------------

TEST(Theorem2, UtilityIncreasesUnderTheBound) {
  const core::SingleFileModel model = paper_model();
  const double epsilon = 1e-3;
  const double bound = model.theorem2_alpha_bound(epsilon);
  core::AllocatorOptions options;
  options.alpha = bound * 0.99;
  options.epsilon = epsilon;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> x{0.8, 0.1, 0.1, 0.0};
  for (int step = 0; step < 50; ++step) {
    const auto outcome = allocator.step(x);
    ASSERT_FALSE(outcome.terminal);  // the bound α cannot converge in 50
    EXPECT_GT(model.utility(outcome.x), model.utility(x));
    x = outcome.x;
  }
}

TEST(Theorem2, SecondOrderTaylorPredictsTheChange) {
  // ΔU computed exactly vs the second-order expansion the proof uses:
  // ΔU ≈ Σ dU_i Δx_i + ½ Σ d²U_i Δx_i². For small α they agree closely.
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions options;
  options.alpha = 1e-3;
  const core::ResourceDirectedAllocator allocator(model, options);
  const std::vector<double> x{0.8, 0.1, 0.1, 0.0};
  const auto outcome = allocator.step(x);
  const std::vector<double> du = model.marginal_utilities(x);
  const std::vector<double> d2c = model.second_derivative(x);
  double taylor = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = outcome.x[i] - x[i];
    taylor += du[i] * dx - 0.5 * d2c[i] * dx * dx;  // d²U = -d²C
  }
  const double exact = model.utility(outcome.x) - model.utility(x);
  // Agreement up to the third-order remainder (Theorem 3 shows it only
  // reinforces the sign).
  EXPECT_NEAR(exact, taylor, 1e-4 * std::fabs(exact) + 1e-12);
  EXPECT_GT(exact, 0.0);
}

// --- The appendix derivative bounds (a)-(d) at the extremes ---------------

TEST(AppendixBounds, AttainedAtTheExtremeAllocations) {
  const core::SingleFileModel model = paper_model();
  const core::DerivativeBounds bounds = model.derivative_bounds();
  // grad_min is attained at x_i = 0, grad_max and hess_max at x_i = 1
  // (arrival rate λ).
  const std::vector<double> at_zero{0.0, 1.0, 0.0, 0.0};
  const std::vector<double> at_one{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(model.gradient(at_zero)[0], bounds.grad_min, 1e-12);
  EXPECT_NEAR(model.gradient(at_one)[0], bounds.grad_max, 1e-12);
  EXPECT_NEAR(model.second_derivative(at_one)[0], bounds.hess_max, 1e-12);
}

// --- Theorem 4: ΔU is bounded below away from convergence ------------------

TEST(Theorem4, UtilityGainHasAPositiveFloor) {
  // The proof: the first-order term is at least α ε²/2 (via Lemma 1 and
  // the ε-separated marginals), and under the Theorem-2 α the second-order
  // loss eats at most half of it; so ΔU >= α ε²/4 whenever the spread
  // criterion has not fired. This floor is what rules out convergence to
  // a non-optimum.
  const core::SingleFileModel model = paper_model();
  const double epsilon = 1e-3;
  const double alpha = model.theorem2_alpha_bound(epsilon) * 0.5;
  core::AllocatorOptions options;
  options.alpha = alpha;
  options.epsilon = epsilon;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> x{0.8, 0.1, 0.1, 0.0};
  for (int step = 0; step < 30; ++step) {
    const auto outcome = allocator.step(x);
    ASSERT_FALSE(outcome.terminal);
    const double gain = model.utility(outcome.x) - model.utility(x);
    EXPECT_GE(gain, alpha * epsilon * epsilon / 4.0);
    x = outcome.x;
  }
}

// --- Theorem 3's ratio condition -------------------------------------------

TEST(Theorem3, GeometricRatioBelowOneOnFeasibleAllocations) {
  // The proof of Theorem 3 needs λ Δx_i / (μ - λ x_i) < 1, guaranteed by
  // μ > λ and x + Δx <= 1; check the quantity on algorithm trajectories.
  const core::SingleFileModel model = paper_model();
  const double lambda = model.total_rate();
  const double mu = model.problem().mu[0];
  core::AllocatorOptions options;
  options.alpha = 0.3;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> x{0.8, 0.1, 0.1, 0.0};
  for (int step = 0; step < 10; ++step) {
    const auto outcome = allocator.step(x);
    if (outcome.terminal) {
      break;
    }
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double dx = outcome.x[i] - x[i];
      EXPECT_LT(lambda * std::fabs(dx) / (mu - lambda * x[i]), 1.0);
    }
    x = outcome.x;
  }
}

}  // namespace
