#include "runtime/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/rng.hpp"

namespace {

using fap::runtime::SweepOptions;
using fap::runtime::task_seed;

SweepOptions options_with_jobs(std::size_t jobs, std::uint64_t seed = 7) {
  SweepOptions options;
  options.jobs = jobs;
  options.base_seed = seed;
  return options;
}

TEST(TaskSeed, IsPureAndPerIndexDistinct) {
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  EXPECT_EQ(task_seed(1, 10), task_seed(1, 10));
  EXPECT_NE(task_seed(1, 0), task_seed(1, 1));
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
}

TEST(TaskSeed, MatchesRngSplitting) {
  // Definition check: task i's seed is the i-th draw of the base stream —
  // exactly the seed Rng::split() would hand the i-th derived generator.
  fap::util::Rng root(99);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(task_seed(99, i), root());
  }
}

TEST(Sweep, OrderedResultsRegardlessOfJobs) {
  const auto fn = [](std::size_t i, std::uint64_t) {
    return static_cast<double>(i) * 1.5;
  };
  const std::vector<double> serial =
      fap::runtime::sweep(33, options_with_jobs(1), fn);
  const std::vector<double> parallel =
      fap::runtime::sweep(33, options_with_jobs(8), fn);
  EXPECT_EQ(serial, parallel);
}

TEST(Sweep, PropagatesTaskExceptions) {
  const auto failing = [](std::size_t i, std::uint64_t) {
    if (i == 5) {
      throw std::runtime_error("sweep point exploded");
    }
    return i;
  };
  EXPECT_THROW(fap::runtime::sweep(8, options_with_jobs(4), failing),
               std::runtime_error);
  EXPECT_THROW(fap::runtime::sweep(8, options_with_jobs(1), failing),
               std::runtime_error);
}

// The acceptance bar for the subsystem: a fig6-style workload — per-task
// model construction, allocator run, per-task RNG — produces bit-identical
// results at jobs=1 and jobs=8.
TEST(Sweep, Fig6StyleWorkloadIsBitIdenticalAcrossJobCounts) {
  const auto measure = [](std::size_t index, std::uint64_t seed) {
    const std::size_t n = 4 + index;
    const fap::net::Topology topology = fap::net::make_complete(n, 1.0);
    const fap::core::SingleFileModel model(fap::core::make_problem(
        topology, fap::core::Workload::uniform(n, 1.0), /*mu=*/1.5,
        /*k=*/1.0));
    // A per-task randomized start exercises the seed derivation: identical
    // seeds => identical trajectories, whatever thread ran the task.
    fap::util::Rng rng(seed);
    std::vector<double> start(n, 0.0);
    double total = 0.0;
    for (double& s : start) {
      s = rng.uniform();
      total += s;
    }
    for (double& s : start) {
      s /= total;
    }
    fap::core::AllocatorOptions options;
    options.alpha = 0.3;
    options.epsilon = 1e-4;
    options.max_iterations = 20000;
    const fap::core::ResourceDirectedAllocator allocator(model, options);
    const fap::core::AllocationResult result = allocator.run(start);
    return std::make_pair(result.cost,
                          static_cast<double>(result.iterations));
  };
  const auto serial = fap::runtime::sweep(8, options_with_jobs(1), measure);
  const auto parallel =
      fap::runtime::sweep(8, options_with_jobs(8), measure);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first);  // bitwise, not near
    EXPECT_EQ(serial[i].second, parallel[i].second);
  }
}

TEST(Replicate, MergesExactlyAcrossJobCounts) {
  const auto sample = [](std::size_t, std::uint64_t seed) {
    fap::util::Rng rng(seed);
    fap::util::RunningStats stats;
    for (int i = 0; i < 1000; ++i) {
      stats.add(rng.normal(5.0, 2.0));
    }
    return stats;
  };
  const fap::util::RunningStats serial =
      fap::runtime::replicate(6, options_with_jobs(1), sample);
  const fap::util::RunningStats parallel =
      fap::runtime::replicate(6, options_with_jobs(8), sample);
  EXPECT_EQ(serial.count(), 6000u);
  EXPECT_EQ(serial.count(), parallel.count());
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.variance(), parallel.variance());
  EXPECT_EQ(serial.min(), parallel.min());
  EXPECT_EQ(serial.max(), parallel.max());
  EXPECT_NEAR(serial.mean(), 5.0, 0.1);
}

TEST(RunDesReplications, DeterministicAcrossJobCountsAndNearAnalytic) {
  const fap::core::SingleFileModel model(
      fap::core::make_paper_ring_problem());
  const std::vector<double> x{0.25, 0.25, 0.25, 0.25};
  fap::sim::DesConfig config = fap::sim::des_config_for(model, x);
  config.measured_accesses = 20000;

  const fap::sim::ReplicatedDesResult serial =
      fap::sim::run_des_replications(config, 4, options_with_jobs(1, 123));
  const fap::sim::ReplicatedDesResult parallel =
      fap::sim::run_des_replications(config, 4, options_with_jobs(8, 123));

  EXPECT_EQ(serial.replications, 4u);
  EXPECT_EQ(serial.measured_cost, parallel.measured_cost);  // bitwise
  EXPECT_EQ(serial.comm_cost.mean(), parallel.comm_cost.mean());
  EXPECT_EQ(serial.sojourn.variance(), parallel.sojourn.variance());
  EXPECT_EQ(serial.cost_per_replication.min(),
            parallel.cost_per_replication.min());
  EXPECT_EQ(serial.comm_cost.count(), 4u * 20000u);

  // Replications genuinely differ (independent seeds) ...
  EXPECT_GT(serial.cost_per_replication.variance(), 0.0);
  // ... and the pooled measurement tracks Eq. 1.
  EXPECT_NEAR(serial.measured_cost, model.cost(x),
              0.05 * model.cost(x));
}

TEST(RunDesReplications, DifferentBaseSeedMovesTheMeasurement) {
  const fap::core::SingleFileModel model(
      fap::core::make_paper_ring_problem());
  fap::sim::DesConfig config =
      fap::sim::des_config_for(model, {0.25, 0.25, 0.25, 0.25});
  config.measured_accesses = 5000;
  const double a =
      fap::sim::run_des_replications(config, 2, options_with_jobs(2, 1))
          .measured_cost;
  const double b =
      fap::sim::run_des_replications(config, 2, options_with_jobs(2, 2))
          .measured_cost;
  EXPECT_NE(a, b);
}

TEST(TaskMetrics, CoalesceByNameAndScopeToTheTask) {
  // Outside any sweep, the accumulator drains cleanly.
  fap::runtime::detail::reset_task_metrics();
  fap::runtime::add_task_metric("warmup", 1.0);
  fap::runtime::detail::take_task_metrics();

  fap::runtime::detail::reset_task_metrics();
  fap::runtime::add_task_metric("hits", 1.0);
  fap::runtime::add_task_metric("batch", 8.0);
  fap::runtime::add_task_metric("hits", 2.0);  // same name: sums
  const auto values = fap::runtime::detail::take_task_metrics();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "hits");
  EXPECT_EQ(values[0].second, 3.0);
  EXPECT_EQ(values[1].first, "batch");
  EXPECT_EQ(values[1].second, 8.0);
  // take() leaves the accumulator empty.
  EXPECT_TRUE(fap::runtime::detail::take_task_metrics().empty());
}

TEST(BatchSweep, FlattenedResultsIndependentOfWidthAndJobs) {
  // Each item's result depends only on (global index, derived seed), so
  // any (width, jobs) combination must flatten to the same vector as the
  // plain serial sweep.
  const auto make = [](std::size_t i, std::uint64_t seed) {
    return std::make_pair(i, seed);
  };
  const auto run = [](std::size_t first,
                      std::vector<std::pair<std::size_t, std::uint64_t>> items)
      -> std::vector<double> {
    std::vector<double> out;
    out.reserve(items.size());
    for (std::size_t j = 0; j < items.size(); ++j) {
      EXPECT_EQ(items[j].first, first + j);  // contiguous global indices
      out.push_back(static_cast<double>(items[j].first) +
                    1e-9 * static_cast<double>(items[j].second % 1000));
    }
    return out;
  };
  const std::vector<double> reference = fap::runtime::sweep(
      23, options_with_jobs(1), [&](std::size_t i, std::uint64_t seed) {
        return run(i, {make(i, seed)})[0];
      });
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      const std::vector<double> batched = fap::runtime::batch_sweep(
          23, width, options_with_jobs(jobs), make, run);
      EXPECT_EQ(batched, reference) << "width=" << width << " jobs=" << jobs;
    }
  }
}

TEST(BatchSweep, EmitsBatchSizeMetricPerBatch) {
  const std::string path = testing::TempDir() + "/batch_sweep_metrics.jsonl";
  std::size_t records = 0;
  {
    fap::runtime::MetricsSink sink(path);
    SweepOptions options = options_with_jobs(1, 3);
    options.metrics = &sink;
    options.run_id = "batch_sweep_test";
    // 10 items at width 4 -> batches of 4, 4, 2.
    fap::runtime::batch_sweep(
        10, 4, options, [](std::size_t i, std::uint64_t) { return i; },
        [](std::size_t, std::vector<std::size_t> items) {
          return std::vector<std::size_t>(items);
        });
    records = sink.records_written();
  }
  EXPECT_EQ(records, 3u);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"batch_size\":4"), std::string::npos) << lines[0];
  EXPECT_NE(lines[2].find("\"batch_size\":2"), std::string::npos) << lines[2];
}

TEST(Sweep, MetricsRecordsOnePerTaskWithDerivedSeeds) {
  const std::string path = testing::TempDir() + "/sweep_metrics.jsonl";
  fap::runtime::MetricsSink sink(path);
  SweepOptions options = options_with_jobs(4, 11);
  options.metrics = &sink;
  options.run_id = "sweep_test";
  fap::runtime::sweep(10, options,
                      [](std::size_t i, std::uint64_t) { return i; });
  EXPECT_EQ(sink.records_written(), 10u);
}

}  // namespace
