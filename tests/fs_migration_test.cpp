// Tests for migration planning: plan completeness/minimality and
// bandwidth-limited wave scheduling.
#include "fs/migration.hpp"

#include <gtest/gtest.h>

#include "fs/directory.hpp"
#include "fs/fragment_map.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = fap::fs;
namespace net = fap::net;

TEST(MigrationPlan, IdenticalLayoutsNeedNoTransfers) {
  const fs::FragmentMap layout =
      fs::FragmentMap::from_allocation(100, {0.5, 0.5});
  EXPECT_TRUE(fs::plan_migration(layout, layout).empty());
}

TEST(MigrationPlan, BoundaryShiftMovesExactlyTheDelta) {
  const fs::FragmentMap from =
      fs::FragmentMap::from_allocation(100, {0.5, 0.5});
  const fs::FragmentMap to =
      fs::FragmentMap::from_allocation(100, {0.7, 0.3});
  const std::vector<fs::Transfer> plan = fs::plan_migration(from, to);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].range.begin, 50u);
  EXPECT_EQ(plan[0].range.end, 70u);
  EXPECT_EQ(plan[0].source, 1u);
  EXPECT_EQ(plan[0].target, 0u);
  EXPECT_EQ(fs::migration_volume(plan), 20u);
}

TEST(MigrationPlan, VolumeMatchesDirectoryAccounting) {
  fap::util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nodes = 3 + rng.uniform_index(5);
    auto random_fractions = [&]() {
      std::vector<double> x(nodes, 0.0);
      double sum = 0.0;
      for (double& xi : x) {
        xi = rng.exponential(1.0);
        sum += xi;
      }
      for (double& xi : x) {
        xi /= sum;
      }
      return x;
    };
    const fs::FragmentMap from =
        fs::FragmentMap::from_allocation(500, random_fractions());
    const fs::FragmentMap to =
        fs::FragmentMap::from_allocation(500, random_fractions());
    const fs::Directory directory(from);
    EXPECT_EQ(fs::migration_volume(fs::plan_migration(from, to)),
              directory.migration_records(to))
        << "trial " << trial;
  }
}

TEST(MigrationPlan, EveryMovedRecordCoveredExactlyOnce) {
  const fs::FragmentMap from =
      fs::FragmentMap::from_allocation(200, {0.4, 0.3, 0.2, 0.1});
  const fs::FragmentMap to =
      fs::FragmentMap::from_allocation(200, {0.1, 0.2, 0.3, 0.4});
  const std::vector<fs::Transfer> plan = fs::plan_migration(from, to);
  std::vector<int> covered(200, 0);
  for (const fs::Transfer& transfer : plan) {
    EXPECT_NE(transfer.source, transfer.target);
    for (std::size_t r = transfer.range.begin; r < transfer.range.end;
         ++r) {
      EXPECT_EQ(from.node_of(r), transfer.source);
      EXPECT_EQ(to.node_of(r), transfer.target);
      ++covered[r];
    }
  }
  for (std::size_t r = 0; r < 200; ++r) {
    const bool moved = from.node_of(r) != to.node_of(r);
    EXPECT_EQ(covered[r], moved ? 1 : 0) << "record " << r;
  }
}

TEST(MigrationSchedule, RespectsPerNodeTransferLimit) {
  const fs::FragmentMap from =
      fs::FragmentMap::from_allocation(400, {0.25, 0.25, 0.25, 0.25});
  const fs::FragmentMap to =
      fs::FragmentMap::from_allocation(400, {0.05, 0.45, 0.05, 0.45});
  const std::vector<fs::Transfer> plan = fs::plan_migration(from, to);
  for (const std::size_t limit : {1u, 2u}) {
    const fs::MigrationSchedule schedule =
        fs::schedule_waves(plan, 4, limit);
    ASSERT_EQ(schedule.wave_of.size(), plan.size());
    for (std::size_t wave = 0; wave < schedule.wave_count; ++wave) {
      std::vector<std::size_t> participation(4, 0);
      for (std::size_t t = 0; t < plan.size(); ++t) {
        if (schedule.wave_of[t] == wave) {
          ++participation[plan[t].source];
          ++participation[plan[t].target];
        }
      }
      for (const std::size_t count : participation) {
        EXPECT_LE(count, limit) << "wave " << wave << " limit " << limit;
      }
    }
    // Total volume is preserved across waves.
    std::size_t scheduled = 0;
    for (const std::size_t volume : schedule.wave_volume) {
      scheduled += volume;
    }
    EXPECT_EQ(scheduled, fs::migration_volume(plan));
  }
}

TEST(MigrationSchedule, HigherLimitNeedsNoMoreWaves) {
  const fs::FragmentMap from = fs::FragmentMap::from_allocation(
      600, {0.3, 0.25, 0.2, 0.15, 0.05, 0.05});
  const fs::FragmentMap to = fs::FragmentMap::from_allocation(
      600, {0.05, 0.05, 0.15, 0.2, 0.25, 0.3});
  const std::vector<fs::Transfer> plan = fs::plan_migration(from, to);
  const auto strict = fs::schedule_waves(plan, 6, 1);
  const auto loose = fs::schedule_waves(plan, 6, 3);
  EXPECT_GE(strict.wave_count, loose.wave_count);
}

TEST(MigrationSchedule, RejectsBadInput) {
  std::vector<fs::Transfer> self_move{
      {fs::RecordRange{0, 10}, 1, 1}};
  EXPECT_THROW(fs::schedule_waves(self_move, 4),
               fap::util::PreconditionError);
  std::vector<fs::Transfer> out_of_range{
      {fs::RecordRange{0, 10}, 0, 9}};
  EXPECT_THROW(fs::schedule_waves(out_of_range, 4),
               fap::util::PreconditionError);
  EXPECT_THROW(fs::schedule_waves({}, 4, 0),
               fap::util::PreconditionError);
}

// Property: for random layout pairs, every wave of every schedule stays
// within the per-node transfer limit, and the schedule partitions the
// plan (volumes add up).
TEST(MigrationSchedule, RandomizedPlansNeverExceedPerNodeLimit) {
  fap::util::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t nodes = 3 + rng.uniform_index(8);
    auto random_fractions = [&]() {
      std::vector<double> x(nodes, 0.0);
      double sum = 0.0;
      for (double& xi : x) {
        xi = rng.exponential(1.0);
        sum += xi;
      }
      for (double& xi : x) {
        xi /= sum;
      }
      return x;
    };
    const std::size_t records = 100 + rng.uniform_index(900);
    const fs::FragmentMap from =
        fs::FragmentMap::from_allocation(records, random_fractions());
    const fs::FragmentMap to =
        fs::FragmentMap::from_allocation(records, random_fractions());
    const std::vector<fs::Transfer> plan = fs::plan_migration(from, to);
    const std::size_t limit = 1 + rng.uniform_index(3);
    const fs::MigrationSchedule schedule =
        fs::schedule_waves(plan, nodes, limit);
    ASSERT_EQ(schedule.wave_of.size(), plan.size());
    ASSERT_EQ(schedule.wave_volume.size(), schedule.wave_count);
    std::vector<std::size_t> participation(schedule.wave_count * nodes, 0);
    std::size_t scheduled = 0;
    for (std::size_t t = 0; t < plan.size(); ++t) {
      const std::size_t wave = schedule.wave_of[t];
      ASSERT_LT(wave, schedule.wave_count);
      ++participation[wave * nodes + plan[t].source];
      ++participation[wave * nodes + plan[t].target];
    }
    for (const std::size_t count : participation) {
      EXPECT_LE(count, limit) << "trial " << trial;
    }
    for (const std::size_t volume : schedule.wave_volume) {
      EXPECT_GT(volume, 0u);  // no empty waves
      scheduled += volume;
    }
    EXPECT_EQ(scheduled, fs::migration_volume(plan)) << "trial " << trial;
  }
}

// Property: replaying plan_migration(from, to) against `from` lands every
// record at exactly its `to` home.
TEST(MigrationPlan, ApplyingPlanReproducesTargetLayout) {
  fap::util::Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t nodes = 2 + rng.uniform_index(9);
    auto random_fractions = [&]() {
      std::vector<double> x(nodes, 0.0);
      double sum = 0.0;
      for (double& xi : x) {
        xi = rng.exponential(1.0);
        sum += xi;
      }
      for (double& xi : x) {
        xi /= sum;
      }
      return x;
    };
    const std::size_t records = 50 + rng.uniform_index(950);
    const fs::FragmentMap from =
        fs::FragmentMap::from_allocation(records, random_fractions());
    const fs::FragmentMap to =
        fs::FragmentMap::from_allocation(records, random_fractions());
    const std::vector<net::NodeId> homes =
        fs::apply_migration(from, fs::plan_migration(from, to));
    ASSERT_EQ(homes.size(), records);
    for (std::size_t r = 0; r < records; ++r) {
      ASSERT_EQ(homes[r], to.node_of(r))
          << "trial " << trial << " record " << r;
    }
  }
}

TEST(MigrationPlan, ApplyRejectsPlanFromForeignLayout) {
  const fs::FragmentMap from =
      fs::FragmentMap::from_allocation(100, {0.5, 0.5});
  // Claims records 0..10 live at node 1; they live at node 0.
  const std::vector<fs::Transfer> bogus{
      {fs::RecordRange{0, 10}, 1, 0}};
  EXPECT_THROW(fs::apply_migration(from, bogus),
               fap::util::PreconditionError);
}

TEST(MigrationPlan, RejectsMismatchedLayouts) {
  const fs::FragmentMap a = fs::FragmentMap::from_allocation(100, {1.0});
  const fs::FragmentMap b =
      fs::FragmentMap::from_allocation(100, {0.5, 0.5});
  EXPECT_THROW(fs::plan_migration(a, b), fap::util::PreconditionError);
}

}  // namespace
