// Laptop-scale stress: the library's headline operations at sizes well
// beyond the paper's experiments, asserting correctness (not wall-clock,
// which micro_perf covers) stays intact at scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "fs/fragment_map.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

TEST(Scale, TwoHundredNodeCompleteNetworkConvergesQuickly) {
  const std::size_t n = 200;
  const net::Topology topology = net::make_complete(n, 1.0);
  const core::SingleFileModel model(core::make_problem(
      topology, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/1.0));
  std::vector<double> start(n, 0.0);
  start[0] = 1.0;
  core::AllocatorOptions options;
  options.step_rule = core::StepRule::kDynamic;
  options.epsilon = 1e-4;
  options.max_iterations = 1000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run(start);
  ASSERT_TRUE(result.converged);
  // Figure 6's flatness extends: even 200 nodes converge in few steps.
  EXPECT_LE(result.iterations, 50u);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 1.0 / static_cast<double>(n), 1e-3);
  }
}

TEST(Scale, HundredNodeRandomMetricNetwork) {
  fap::util::Rng rng(123);
  const std::size_t n = 100;
  const net::Topology topology = net::make_random_metric(n, 4, rng);
  core::Workload workload;
  workload.lambda.assign(n, 0.0);
  for (double& rate : workload.lambda) {
    rate = rng.uniform(0.005, 0.015);
  }
  const core::SingleFileModel model(
      core::make_problem(topology, workload, /*mu=*/1.6, /*k=*/1.0));
  core::AllocatorOptions options;
  options.step_rule = core::StepRule::kDynamic;
  options.epsilon = 1e-5;
  options.max_iterations = 50000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-9);
  // KKT spot-check at scale.
  const std::vector<double> du = model.marginal_utilities(result.x);
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.x[i] > 1e-6) {
      lo = std::min(lo, du[i]);
      hi = std::max(hi, du[i]);
    }
  }
  EXPECT_LT(hi - lo, 1e-4);
}

TEST(Scale, SixtyFourNodeRingGradientMatchesNumeric) {
  const std::size_t n = 64;
  std::vector<double> costs(n, 0.0);
  fap::util::Rng rng(9);
  for (double& c : costs) {
    c = rng.uniform(0.5, 2.0);
  }
  core::RingProblem problem{net::VirtualRing(costs),
                            3.0,
                            std::vector<double>(n, 1.0 / n),
                            std::vector<double>(n, 1.5),
                            1.0,
                            fap::queueing::DelayModel::mm1(0.95),
                            0.0};
  const core::RingModel model(problem);
  std::vector<double> x(n, 3.0 / static_cast<double>(n));
  // Perturb to a generic point.
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const double shift = rng.uniform(0.0, 0.02);
    x[i] += shift;
    x[i + 1] -= shift;
  }
  const std::vector<double> analytic = model.gradient(x);
  const double base = model.cost(x);
  for (const std::size_t l : {0u, 13u, 31u, 63u}) {
    std::vector<double> bumped = x;
    bumped[l] += 1e-7;
    const double numeric = (model.cost(bumped) - base) / 1e-7;
    EXPECT_NEAR(analytic[l], numeric, 1e-3 * (1.0 + std::fabs(numeric)));
  }
}

TEST(Scale, MillionRecordFragmentMap) {
  const std::size_t records = 1000000;
  fap::util::Rng rng(77);
  std::vector<double> x(32, 0.0);
  double sum = 0.0;
  for (double& xi : x) {
    xi = rng.exponential(1.0);
    sum += xi;
  }
  for (double& xi : x) {
    xi /= sum;
  }
  const fap::fs::FragmentMap map =
      fap::fs::FragmentMap::from_allocation(records, x);
  EXPECT_EQ(map.record_count(), records);
  EXPECT_LE(fap::util::linf_distance(map.fractions(), x),
            1.0 / static_cast<double>(records) + 1e-12);
  // Random lookups resolve consistently.
  for (int probe = 0; probe < 1000; ++probe) {
    const std::size_t record = rng.uniform_index(records);
    EXPECT_TRUE(map.range_at(map.node_of(record)).contains(record));
  }
}

TEST(Scale, FiftyThousandRecordZipfPacking) {
  const std::vector<double> popularity =
      fap::fs::zipf_popularity(50000, 1.0);
  const std::vector<double> targets{0.4, 0.3, 0.2, 0.1};
  const fap::fs::RecordAssignment assignment =
      fap::fs::pack_records(popularity, targets);
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_NEAR(assignment.achieved_shares[node], targets[node], 1e-3);
  }
}

TEST(Scale, HalfMillionAccessDes) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  fap::sim::DesConfig config =
      fap::sim::des_config_for(model, {0.25, 0.25, 0.25, 0.25});
  config.measured_accesses = 500000;
  config.seed = 31415;
  const fap::sim::DesResult result = fap::sim::run_des(config);
  EXPECT_NEAR(result.measured_cost, 1.8, 0.03);
}

}  // namespace
