// RecordSampler revision 2 swaps the O(log R) inverse-CDF draw for the
// Walker/Vose alias table — at catalog scale (R ~ 1e6 records) the CDF
// walk was the workload generator's hot path. The swap must preserve the
// sampled distribution exactly (table mass accounting), statistically
// (chi-squared over a long stream), and the one-uniform-per-draw RNG
// stream alignment. Alongside: the popularity-vector hardening — contract
// checks and the compensated normalization that keeps Σ p_r = 1 to 1e-15
// at a million records.
#include "fs/popularity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

using fap::fs::kRecordSamplerRevision;
using fap::fs::normalized_popularity;
using fap::fs::RecordSampler;
using fap::fs::uniform_popularity;
using fap::fs::zipf_popularity;
using fap::util::PreconditionError;

// Probability mass the alias table assigns to record r (see
// sim::AliasSampler::acceptance()).
std::vector<double> table_masses(const RecordSampler& sampler) {
  const auto& table = sampler.table();
  const std::size_t n = table.size();
  std::vector<double> mass(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    mass[i] += table.acceptance()[i];
    mass[table.alias()[i]] += 1.0 - table.acceptance()[i];
  }
  for (double& m : mass) {
    m /= static_cast<double>(n);
  }
  return mass;
}

// Upper chi-squared critical value at p ≈ 0.999 (Wilson–Hilferty cube,
// z = 3.09) — same generous fixed-seed guard as the DES sampler tests.
double chi2_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double term =
      1.0 - 2.0 / (9.0 * d) + 3.09 * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

TEST(RecordSampler, RevisionIsTheAliasTable) {
  EXPECT_EQ(kRecordSamplerRevision, 2);
}

TEST(RecordSampler, TableMassesMatchPopularityExactly) {
  const std::vector<std::vector<double>> distributions = {
      uniform_popularity(1),
      uniform_popularity(7),
      zipf_popularity(64, 0.8),
      zipf_popularity(1000, 1.2),
      normalized_popularity({5.0, 0.0, 1.0, 0.0, 2.0}),
  };
  for (const std::vector<double>& popularity : distributions) {
    const RecordSampler sampler(popularity);
    ASSERT_EQ(sampler.record_count(), popularity.size());
    const std::vector<double> mass = table_masses(sampler);
    for (std::size_t r = 0; r < popularity.size(); ++r) {
      EXPECT_NEAR(mass[r], popularity[r], 1e-12) << "record " << r;
    }
  }
}

TEST(RecordSampler, ChiSquaredMatchesZipfPopularity) {
  const std::vector<double> popularity = zipf_popularity(64, 0.9);
  const RecordSampler sampler(popularity);
  fap::util::Rng rng(271828);
  constexpr std::size_t kSamples = 400000;
  std::vector<std::size_t> counts(popularity.size(), 0);
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::size_t r = sampler.sample(rng);
    ASSERT_LT(r, counts.size());
    ++counts[r];
  }
  double chi2 = 0.0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    const double expected =
        popularity[r] * static_cast<double>(kSamples);
    const double dev = static_cast<double>(counts[r]) - expected;
    chi2 += dev * dev / expected;
  }
  EXPECT_LT(chi2, chi2_critical(counts.size() - 1));
}

TEST(RecordSampler, NeverEmitsZeroMassRecords) {
  const RecordSampler sampler(normalized_popularity({1.0, 0.0, 1.0, 0.0}));
  fap::util::Rng rng(17);
  for (int draw = 0; draw < 20000; ++draw) {
    const std::size_t r = sampler.sample(rng);
    EXPECT_TRUE(r == 0 || r == 2) << "draw " << draw;
  }
}

TEST(RecordSampler, ConsumesExactlyOneUniformPerDraw) {
  // The CDF sampler drew one uniform per sample; revision 2 must keep the
  // stream alignment so swapping it cannot shift any downstream draws.
  const RecordSampler sampler(zipf_popularity(32, 0.7));
  fap::util::Rng sampled(99);
  fap::util::Rng advanced(99);
  for (int draw = 0; draw < 100; ++draw) {
    sampler.sample(sampled);
    advanced.uniform();
  }
  EXPECT_EQ(sampled(), advanced());
}

TEST(RecordSampler, KeepsTheStrictCdfEraContracts) {
  EXPECT_THROW(RecordSampler({}), PreconditionError);
  // Any negative mass is rejected outright — stricter than the alias
  // table's dust clamp, matching the CDF sampler this replaced.
  EXPECT_THROW(RecordSampler({1.0, -1e-13}), PreconditionError);
  EXPECT_THROW(RecordSampler({0.5, 0.4}), PreconditionError);  // Σ = 0.9
  EXPECT_NO_THROW(RecordSampler({0.5, 0.5}));
}

TEST(Popularity, ZipfContracts) {
  EXPECT_THROW(zipf_popularity(0, 0.8), PreconditionError);
  EXPECT_THROW(zipf_popularity(10, -0.1), PreconditionError);
  EXPECT_NO_THROW(zipf_popularity(10, 0.0));  // s = 0 is uniform
}

TEST(Popularity, NormalizationContracts) {
  EXPECT_THROW(normalized_popularity({}), PreconditionError);
  EXPECT_THROW(normalized_popularity({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(normalized_popularity({1.0, -0.5}), PreconditionError);
  EXPECT_THROW(uniform_popularity(0), PreconditionError);
}

TEST(Popularity, CompensatedNormalizationSumsToOneAtMillionRecords) {
  // A naive normalization total carries O(R·eps) ≈ 5e-11 relative error
  // at R = 1e6, so Σ p_r would miss 1 by the same amount. With the
  // Neumaier total the miss is a few eps. The sum itself is measured
  // with compensation too — a naive test-side sum would re-introduce
  // exactly the error being tested away.
  constexpr std::size_t kRecords = 1000000;
  for (const double s : {0.0, 0.8, 1.4}) {
    const std::vector<double> popularity = zipf_popularity(kRecords, s);
    const double total = fap::util::stable_sum(popularity);
    EXPECT_NEAR(total, 1.0, 1e-15) << "zipf exponent " << s;
  }
  // An adversarially wide-magnitude weight vector (12 decades).
  std::vector<double> weights(kRecords);
  for (std::size_t r = 0; r < kRecords; ++r) {
    weights[r] = std::pow(10.0, -static_cast<double>(r % 13));
  }
  const std::vector<double> popularity =
      normalized_popularity(std::move(weights));
  EXPECT_NEAR(fap::util::stable_sum(popularity), 1.0, 1e-15);
}

}  // namespace
