// Shared fixtures for the test suite: deterministic random FAP instances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/multi_file.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "util/rng.hpp"

namespace fap::testing {

/// A random but always-valid single-file problem: random-metric topology,
/// heterogeneous rates and service speeds, λ < min μ.
inline core::SingleFileProblem random_single_file_problem(std::uint64_t seed,
                                                          std::size_t nodes) {
  util::Rng rng(seed);
  const net::Topology topology = net::make_random_metric(nodes, 2, rng);
  core::Workload workload;
  workload.lambda.resize(nodes);
  for (double& rate : workload.lambda) {
    rate = rng.uniform(0.05, 0.5);
  }
  const double total = workload.total();
  core::SingleFileProblem problem = core::make_problem(
      topology, workload, /*mu=*/total * rng.uniform(1.3, 3.0),
      /*k=*/rng.uniform(0.2, 3.0));
  // Heterogeneous service rates, all above λ.
  for (double& mu : problem.mu) {
    mu = total * rng.uniform(1.2, 3.0);
  }
  return problem;
}

/// Random feasible allocation for a model (Dirichlet-ish via exponentials).
inline std::vector<double> random_feasible(const core::CostModel& model,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(model.dimension(), 0.0);
  for (const core::ConstraintGroup& group : model.constraint_groups()) {
    double sum = 0.0;
    std::vector<double> raw(group.indices.size());
    for (double& value : raw) {
      value = rng.exponential(1.0);
      sum += value;
    }
    for (std::size_t k = 0; k < raw.size(); ++k) {
      x[group.indices[k]] = raw[k] / sum * group.total;
    }
  }
  return x;
}

/// Random virtual-ring multicopy problem.
inline core::RingProblem random_ring_problem(std::uint64_t seed,
                                             std::size_t nodes,
                                             double copies) {
  util::Rng rng(seed);
  std::vector<double> link_costs(nodes);
  for (double& cost : link_costs) {
    cost = rng.uniform(0.5, 4.0);
  }
  core::RingProblem problem{net::VirtualRing(link_costs),
                            copies,
                            {},
                            {},
                            1.0,
                            queueing::DelayModel::mm1(/*rho_max=*/0.95),
                            0.0};
  problem.lambda.resize(nodes);
  for (double& rate : problem.lambda) {
    rate = rng.uniform(0.05, 0.4);
  }
  problem.mu.assign(nodes, 0.0);
  double total = 0.0;
  for (const double rate : problem.lambda) {
    total += rate;
  }
  for (double& mu : problem.mu) {
    mu = total * rng.uniform(1.3, 2.5);
  }
  problem.k = rng.uniform(0.3, 2.0);
  problem.delay = queueing::DelayModel::mm1(/*rho_max=*/0.95);
  return problem;
}

}  // namespace fap::testing
