#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <string>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"

namespace {

using fap::runtime::IndexRange;
using fap::runtime::MetricsRecord;
using fap::runtime::MetricsSink;
using fap::runtime::ThreadPool;

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorkerEvenWhenAskedForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([i] {
      if (i == 3) {
        throw std::runtime_error("task failure");
      }
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SurvivesReuseAfterExceptionBatch) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first batch fails"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);

  // The error was consumed by the failing batch's wait(); the pool keeps
  // executing subsequent batches as if nothing happened.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each need the other to start before finishing can only
  // complete if the pool genuinely runs them on distinct threads.
  ThreadPool pool(2);
  std::atomic<int> arrivals{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&arrivals] {
      arrivals.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (arrivals.load() < 2) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "tasks never overlapped; pool is not parallel";
        std::this_thread::yield();
      }
    });
  }
  pool.wait();
  EXPECT_EQ(arrivals.load(), 2);
}

TEST(StaticChunks, CoversRangeInOrderWithBalancedSizes) {
  const std::vector<IndexRange> chunks = fap::runtime::static_chunks(10, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(chunks[1].size(), 3u);
  EXPECT_EQ(chunks[2].size(), 3u);
  std::size_t expected_begin = 0;
  for (const IndexRange& chunk : chunks) {
    EXPECT_EQ(chunk.begin, expected_begin);
    expected_begin = chunk.end;
  }
  EXPECT_EQ(expected_begin, 10u);
}

TEST(StaticChunks, DegenerateCases) {
  EXPECT_TRUE(fap::runtime::static_chunks(0, 4).empty());
  const std::vector<IndexRange> fewer = fap::runtime::static_chunks(2, 8);
  ASSERT_EQ(fewer.size(), 2u);  // never emits empty ranges
  EXPECT_EQ(fewer[0].size(), 1u);
  EXPECT_EQ(fewer[1].size(), 1u);
}

TEST(ParallelMap, ResultsAreOrderedByIndex) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out = fap::runtime::parallel_map(
      pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(64);
  fap::runtime::parallel_for(pool, 64,
                             [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const std::atomic<int>& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(MetricsSink, WritesOneValidJsonLinePerRecord) {
  const std::string path =
      testing::TempDir() + "/runtime_metrics_test.jsonl";
  MetricsSink sink(path);
  ThreadPool pool(4);
  fap::runtime::parallel_for(pool, 32, [&sink](std::size_t i) {
    MetricsRecord record;
    record.run_id = "pool_test";
    record.task = "task " + std::to_string(i);
    record.task_index = i;
    record.values.emplace_back("value", static_cast<double>(i));
    sink.record(record);
  });
  EXPECT_EQ(sink.records_written(), 32u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::set<std::string> tasks;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    // Concurrent writers must not tear lines: every line is a complete
    // object carrying the shared run id.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"run_id\":\"pool_test\""), std::string::npos);
    const std::size_t task_pos = line.find("\"task\":\"task ");
    ASSERT_NE(task_pos, std::string::npos);
    tasks.insert(line.substr(task_pos, line.find('"', task_pos + 9)));
  }
  EXPECT_EQ(lines, 32u);
  EXPECT_EQ(tasks.size(), 32u);  // all distinct tasks present
}

TEST(MetricsSink, JsonLineShapeIsStable) {
  MetricsRecord record;
  record.run_id = "fig6";
  record.task = "N=12";
  record.task_index = 8;
  record.seed = 42;
  record.wall_ms = 1.5;
  record.values.emplace_back("iterations", 11.0);
  record.series = {3.0, 2.5};
  EXPECT_EQ(fap::runtime::to_json_line(record),
            "{\"run_id\":\"fig6\",\"task\":\"N=12\",\"task_index\":8,"
            "\"seed\":42,\"wall_ms\":1.5,\"values\":{\"iterations\":11},"
            "\"series\":[3,2.5]}");
}

}  // namespace
