// The pool-parallel all-pairs overloads promise byte-identical output to
// their serial counterparts on every topology shape the generators
// produce — that guarantee is what lets the experiment pipeline fan the
// O(n · Dijkstra) work over cores without perturbing a single figure.
#include "net/shortest_paths.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/generators.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

namespace net = fap::net;
namespace runtime = fap::runtime;

std::vector<std::pair<std::string, net::Topology>> all_generator_samples() {
  fap::util::Rng rng(5);
  fap::util::Rng rng2(6);
  std::vector<std::pair<std::string, net::Topology>> samples;
  samples.emplace_back("ring", net::make_ring(9, 1.0));
  samples.emplace_back("weighted_ring",
                       net::make_ring(5, {1.0, 2.5, 0.5, 3.0, 1.5}));
  samples.emplace_back("complete", net::make_complete(8, 2.0));
  samples.emplace_back("star", net::make_star(11, 1.5));
  samples.emplace_back("line", net::make_line(13, 0.75));
  samples.emplace_back("grid", net::make_grid(4, 5, 1.0));
  samples.emplace_back("erdos_renyi",
                       net::make_erdos_renyi(17, 0.3, 0.5, 2.0, rng));
  samples.emplace_back("random_metric", net::make_random_metric(23, 3, rng2));
  return samples;
}

TEST(ParallelShortestPaths, AllPairsMatchesSerialByteForByte) {
  runtime::ThreadPool pool(4);
  for (const auto& [name, topology] : all_generator_samples()) {
    const net::CostMatrix serial = net::all_pairs_shortest_paths(topology);
    const net::CostMatrix parallel =
        net::all_pairs_shortest_paths(topology, pool);
    ASSERT_EQ(serial.node_count(), parallel.node_count()) << name;
    const std::size_t n = serial.node_count();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        // EXPECT_EQ on doubles is exact — the contract is bitwise, not
        // within-epsilon.
        ASSERT_EQ(serial(i, j), parallel(i, j))
            << name << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ParallelShortestPaths, RouteHopCountsMatchSerial) {
  runtime::ThreadPool pool(4);
  for (const auto& [name, topology] : all_generator_samples()) {
    const auto serial = net::route_hop_counts(topology);
    const auto parallel = net::route_hop_counts(topology, pool);
    EXPECT_EQ(serial, parallel) << name;
  }
}

TEST(ParallelShortestPaths, SingleWorkerPoolMatchesToo) {
  // Degenerate pool: everything lands on one worker; must still agree.
  runtime::ThreadPool pool(1);
  fap::util::Rng rng(9);
  const net::Topology topology = net::make_random_metric(31, 4, rng);
  const net::CostMatrix serial = net::all_pairs_shortest_paths(topology);
  const net::CostMatrix parallel =
      net::all_pairs_shortest_paths(topology, pool);
  const std::size_t n = serial.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(serial(i, j), parallel(i, j));
    }
  }
}

TEST(CostMatrix, UncheckedAccessorsAgreeWithCheckedOnes) {
  fap::util::Rng rng(13);
  const net::Topology topology = net::make_random_metric(12, 3, rng);
  const net::CostMatrix matrix = net::all_pairs_shortest_paths(topology);
  for (std::size_t i = 0; i < matrix.node_count(); ++i) {
    const double* row = matrix.row(i);
    for (std::size_t j = 0; j < matrix.node_count(); ++j) {
      ASSERT_EQ(matrix.cost(i, j), matrix(i, j));
      ASSERT_EQ(matrix.cost(i, j), row[j]);
    }
  }
}

}  // namespace
