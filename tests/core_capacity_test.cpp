// Storage-capacity constraints (x_i <= s_i) — the Suri [33]
// generalization from the Section 3 survey, and the in-algorithm version
// of Section 7.2's one-whole-copy cap on the ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/multicopy_allocator.hpp"
#include "core/newton_allocator.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
using fap::util::PreconditionError;

core::SingleFileProblem capped_ring(std::vector<double> caps) {
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.storage_capacity = std::move(caps);
  return problem;
}

// --- Capped simplex projection ---------------------------------------------

TEST(CappedProjection, MatchesUncappedWhenCapsAreLoose) {
  fap::util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(6);
    for (double& value : v) {
      value = rng.uniform(-1.0, 2.0);
    }
    const std::vector<double> loose(6, 10.0);
    const std::vector<double> capped =
        fap::baselines::project_capped_simplex(v, 1.0, loose);
    const std::vector<double> plain =
        fap::baselines::project_simplex(v, 1.0);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(capped[i], plain[i], 1e-8);
    }
  }
}

TEST(CappedProjection, FeasibilityAndVariationalOptimality) {
  fap::util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(5);
    std::vector<double> caps(5);
    for (std::size_t i = 0; i < 5; ++i) {
      v[i] = rng.uniform(-1.0, 2.0);
      caps[i] = rng.uniform(0.25, 0.6);
    }
    const std::vector<double> p =
        fap::baselines::project_capped_simplex(v, 1.0, caps);
    EXPECT_NEAR(fap::util::sum(p), 1.0, 1e-9);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_GE(p[i], -1e-12);
      EXPECT_LE(p[i], caps[i] + 1e-12);
    }
    // (v - p)·(z - p) <= 0 for feasible z.
    for (int probe = 0; probe < 30; ++probe) {
      std::vector<double> raw(5);
      for (double& zi : raw) {
        zi = rng.uniform(0.0, 1.0);
      }
      const std::vector<double> z =
          fap::baselines::project_capped_simplex(raw, 1.0, caps);
      double inner = 0.0;
      for (std::size_t i = 0; i < 5; ++i) {
        inner += (v[i] - p[i]) * (z[i] - p[i]);
      }
      EXPECT_LE(inner, 1e-7);
    }
  }
}

TEST(CappedProjection, RejectsInsufficientCapacity) {
  EXPECT_THROW(fap::baselines::project_capped_simplex({1.0, 1.0}, 1.0,
                                                      {0.3, 0.3}),
               PreconditionError);
}

// --- Model plumbing ----------------------------------------------------------

TEST(Capacity, CheckFeasibleEnforcesCaps) {
  const core::SingleFileModel model(capped_ring({0.3, 0.3, 0.3, 0.3}));
  EXPECT_NO_THROW(model.check_feasible({0.3, 0.3, 0.3, 0.1}));
  EXPECT_THROW(model.check_feasible({0.4, 0.2, 0.2, 0.2}),
               PreconditionError);
}

TEST(Capacity, ModelRejectsInsufficientTotalCapacity) {
  EXPECT_THROW(core::SingleFileModel{capped_ring({0.2, 0.2, 0.2, 0.2})},
               PreconditionError);
}

TEST(Capacity, UniformAllocationWaterFillsAroundCaps) {
  const core::SingleFileModel model(capped_ring({0.1, 1.0, 1.0, 1.0}));
  const std::vector<double> x = core::uniform_allocation(model);
  EXPECT_NEAR(x[0], 0.1, 1e-12);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(x[i], 0.3, 1e-12);
  }
  EXPECT_NO_THROW(model.check_feasible(x));
}

// --- The algorithm under caps -------------------------------------------------

TEST(Capacity, BindingCapSpillsToTheNextBestNodes) {
  // Symmetric ring, but node 0 can store at most 10% of the file. The
  // unconstrained optimum (0.25 each) is infeasible; the capped optimum
  // pins node 0 at its cap and splits the remainder evenly.
  const core::SingleFileModel model(capped_ring({0.1, 1.0, 1.0, 1.0}));
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.1, 1e-6);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(result.x[i], 0.3, 1e-4);
  }
}

TEST(Capacity, MatchesCappedProjectedGradientOnRandomProblems) {
  for (const std::uint64_t seed : {2u, 5u, 11u}) {
    core::SingleFileProblem problem =
        fap::testing::random_single_file_problem(seed, 6);
    fap::util::Rng rng(seed + 40);
    problem.storage_capacity.assign(6, 0.0);
    for (double& cap : problem.storage_capacity) {
      cap = rng.uniform(0.2, 0.5);
    }
    const core::SingleFileModel model(std::move(problem));

    core::AllocatorOptions options;
    options.alpha = 0.1;
    options.epsilon = 1e-7;
    options.max_iterations = 300000;
    const core::ResourceDirectedAllocator allocator(model, options);
    const core::AllocationResult decentralized =
        allocator.run(core::uniform_allocation(model));
    ASSERT_TRUE(decentralized.converged) << seed;

    const auto centralized = fap::baselines::projected_gradient_solve(
        model, core::uniform_allocation(model));
    EXPECT_NEAR(decentralized.cost, centralized.cost,
                1e-4 * (1.0 + std::fabs(centralized.cost)))
        << seed;
  }
}

TEST(Capacity, TraceStaysWithinBoundsAndMonotone) {
  const core::SingleFileModel model(capped_ring({0.1, 0.4, 1.0, 1.0}));
  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-6;
  options.record_trace = true;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  const std::vector<double> caps = model.upper_bounds();
  for (std::size_t t = 0; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(result.trace[t].x[i], -1e-12);
      EXPECT_LE(result.trace[t].x[i], caps[i] + 1e-12);
    }
    if (t > 0) {
      EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-10);
    }
  }
}

TEST(Capacity, KktHoldsAtCaps) {
  // At a capped optimum: interior nodes share marginal utility q; a
  // cap-pinned node has dU >= q (it wants more than it may hold).
  const core::SingleFileModel model(capped_ring({0.1, 1.0, 1.0, 1.0}));
  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-8;
  options.max_iterations = 300000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  const std::vector<double> du = model.marginal_utilities(result.x);
  const double q = du[1];  // interior node
  EXPECT_NEAR(du[2], q, 1e-5);
  EXPECT_NEAR(du[3], q, 1e-5);
  EXPECT_GE(du[0], q - 1e-6);  // pinned at its cap
}

TEST(Capacity, RingInAlgorithmCapIsCompetitiveWithPostHocTrim) {
  // Section 7.2 trims to one copy per node AFTER optimizing; the capped
  // model enforces it DURING optimization. On this discontinuous
  // objective both drivers stop at "best seen" points, so neither
  // strictly dominates — but the in-algorithm cap must be competitive
  // (within a fraction of a percent) while guaranteeing feasibility at
  // EVERY iterate, which the trim-after approach cannot.
  core::RingProblem uncapped =
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0});
  core::RingProblem capped = uncapped;
  capped.max_per_node = 1.0;

  core::MultiCopyOptions options;
  options.alpha = 0.08;
  options.max_iterations = 3000;

  const core::RingModel uncapped_model(uncapped);
  const core::MultiCopyResult raw =
      core::MultiCopyAllocator(uncapped_model, options)
          .run({0.9, 0.5, 0.35, 0.25});
  const std::vector<double> trimmed =
      core::trim_to_whole_copy(uncapped_model, raw.best_x);

  const core::RingModel capped_model(capped);
  const core::MultiCopyResult capped_run =
      core::MultiCopyAllocator(capped_model, options)
          .run({0.9, 0.5, 0.35, 0.25});
  for (const double xi : capped_run.best_x) {
    EXPECT_LE(xi, 1.0 + 1e-9);
  }
  EXPECT_LE(capped_model.cost(capped_run.best_x),
            1.005 * uncapped_model.cost(trimmed));
  // And every capped iterate (not just the end state) respected the cap.
  EXPECT_LE(*std::max_element(capped_run.final_x.begin(),
                              capped_run.final_x.end()),
            1.0 + 1e-9);
}

TEST(Capacity, UnsupportedAllocatorsRejectCappedModels) {
  const core::SingleFileModel model(capped_ring({0.5, 0.5, 0.5, 0.5}));
  EXPECT_THROW(
      core::NewtonAllocator(model, core::NewtonAllocatorOptions{}),
      PreconditionError);
}

TEST(Capacity, UncappedBehaviorUnchanged) {
  // Regression guard: the paper's headline numbers survive the capacity
  // machinery.
  const core::SingleFileModel model(core::make_paper_ring_problem());
  core::AllocatorOptions options;
  options.alpha = 0.67;
  options.epsilon = 1e-3;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 4u);
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

}  // namespace
