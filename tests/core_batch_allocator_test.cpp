// The batched SoA kernel's load-bearing contract: BatchAllocator::run_all
// returns results BITWISE equal to running each submission through the
// serial ResourceDirectedAllocator — same x (every lane of every
// iteration executes the serial operation sequence), same cost, same
// iteration count, same convergence flag. The pin is across randomized
// instances mixing topologies, delay disciplines, step rules, storage
// capacities and boundary starts, at several batch widths (partitioning
// into lanes must not be observable).
#include "core/batch_allocator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/simd_dispatch.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using fap::core::AllocationResult;
using fap::core::AllocatorOptions;
using fap::core::BatchAllocator;
using fap::core::BatchRunResult;
using fap::core::ResourceDirectedAllocator;
using fap::core::SingleFileModel;
using fap::core::SingleFileProblem;
using fap::core::StepRule;
using fap::core::Workload;
using fap::queueing::DelayModel;
using fap::util::Rng;

// Bitwise double equality: stricter than EXPECT_EQ (distinguishes -0.0
// from +0.0) — the batch path must reproduce the serial bits exactly.
::testing::AssertionResult BitsEqual(double serial, double batch) {
  if (std::bit_cast<std::uint64_t>(serial) ==
      std::bit_cast<std::uint64_t>(batch)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "serial=" << serial << " batch=" << batch << " differ by "
         << (batch - serial);
}

struct RandomInstance {
  SingleFileModel model;
  AllocatorOptions options;
  std::vector<double> start;
};

fap::net::Topology random_topology(std::size_t n, Rng& rng) {
  switch (rng.uniform_index(4)) {
    case 0:
      return fap::net::make_ring(n, rng.uniform(0.5, 2.0));
    case 1:
      return fap::net::make_complete(n, rng.uniform(0.5, 2.0));
    case 2:
      return fap::net::make_star(n, rng.uniform(0.5, 2.0));
    default:
      return fap::net::make_line(n, rng.uniform(0.5, 2.0));
  }
}

DelayModel random_delay(Rng& rng) {
  switch (rng.uniform_index(5)) {
    case 0:
      return DelayModel::mm1();
    case 1:
      return DelayModel::md1();
    case 2:
      return DelayModel::mg1(rng.uniform(0.2, 2.5));
    case 3:
      // Tangent-extended curve: exercises the knee clamp in the
      // vectorized derivative rows.
      return DelayModel::mm1(rng.uniform(0.5, 0.9));
    default:
      // Multi-server lane: forces the whole batch onto the per-lane
      // scalar derivative path.
      return DelayModel::mmc(2 + rng.uniform_index(3));
  }
}

// A feasible start covering the interesting shapes: interior, partly on
// the x = 0 boundary, or saturating a capacity.
std::vector<double> random_start(std::size_t n, const std::vector<double>& caps,
                                 Rng& rng) {
  std::vector<double> x(n, 0.0);
  for (double& v : x) {
    v = rng.uniform(0.05, 1.0);
  }
  if (rng.uniform() < 0.4) {
    // Put some nodes exactly on the lower boundary (keep at least one).
    for (std::size_t i = 1; i < n; ++i) {
      if (rng.uniform() < 0.5) {
        x[i] = 0.0;
      }
    }
  }
  double total = 0.0;
  for (const double v : x) {
    total += v;
  }
  for (double& v : x) {
    v /= total;
  }
  if (!caps.empty()) {
    // Clamp to the caps and redistribute the excess proportionally to the
    // remaining headroom (excess <= headroom because total capacity has
    // slack, so one pass cannot overshoot any cap). Some components land
    // exactly ON their cap — the capacity-boundary start shape.
    double excess = 0.0;
    double headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] > caps[i]) {
        excess += x[i] - caps[i];
        x[i] = caps[i];
      } else {
        headroom += caps[i] - x[i];
      }
    }
    if (excess > 0.0) {
      FAP_EXPECTS(headroom >= excess, "random caps left no slack");
      for (std::size_t i = 0; i < n; ++i) {
        if (x[i] < caps[i]) {
          x[i] += excess * ((caps[i] - x[i]) / headroom);
        }
      }
    }
  }
  return x;
}

RandomInstance make_random_instance(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 3 + rng.uniform_index(10);  // 3..12 nodes
  const fap::net::Topology topology = random_topology(n, rng);
  const DelayModel delay = random_delay(rng);
  // Total rate 1, per-server mu comfortably above it: every reachable
  // allocation (x_i <= 1) is stable even for the pure rho_max = 1 models.
  const double mu = rng.uniform(1.3, 3.0);
  const double k = rng.uniform(0.3, 2.0);
  SingleFileProblem problem = fap::core::make_problem(
      topology, Workload::uniform(n, 1.0), mu, k, delay);
  std::vector<double> caps;
  if (rng.uniform() < 0.4) {
    caps.resize(n);
    for (double& c : caps) {
      c = rng.uniform(0.3, 1.0);
    }
    // Guarantee slack: total capacity at least 1.5x the unit total.
    double total_cap = 0.0;
    for (const double c : caps) {
      total_cap += c;
    }
    if (total_cap < 1.5) {
      for (double& c : caps) {
        c *= 1.5 / total_cap;
      }
    }
    problem.storage_capacity = caps;
  }

  AllocatorOptions options;
  options.alpha = rng.uniform(0.05, 0.5);
  if (rng.uniform() < 0.5) {
    options.step_rule = StepRule::kDynamic;
    options.dynamic_safety = rng.uniform(0.3, 0.9);
  }
  options.epsilon = rng.uniform() < 0.5 ? 1e-3 : 1e-5;
  // Include tight caps so the non-converged retirement path is hit.
  const std::size_t iteration_caps[] = {40, 200, 20000};
  options.max_iterations = iteration_caps[rng.uniform_index(3)];

  RandomInstance inst{SingleFileModel(std::move(problem)), options, {}};
  inst.start = random_start(n, caps, rng);
  return inst;
}

void expect_matches_serial(const RandomInstance& inst,
                           const BatchRunResult& batch, std::size_t index) {
  const ResourceDirectedAllocator serial(inst.model, inst.options);
  const AllocationResult expected = serial.run(inst.start);
  SCOPED_TRACE("instance " + std::to_string(index));
  EXPECT_EQ(expected.converged, batch.converged);
  EXPECT_EQ(expected.iterations, batch.iterations);
  EXPECT_TRUE(BitsEqual(expected.cost, batch.cost));
  ASSERT_EQ(expected.x.size(), batch.x.size());
  for (std::size_t j = 0; j < expected.x.size(); ++j) {
    EXPECT_TRUE(BitsEqual(expected.x[j], batch.x[j])) << "node " << j;
  }
}

// The headline pin: >= 200 randomized instances, two batch widths, every
// result field bitwise equal to the serial allocator.
TEST(BatchAllocator, BitIdenticalToSerialAcrossRandomizedInstances) {
  constexpr std::size_t kInstances = 200;
  std::vector<RandomInstance> instances;
  instances.reserve(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.push_back(make_random_instance(1000 + i));
  }
  for (const std::size_t width : {std::size_t{8}, std::size_t{64}}) {
    BatchAllocator batch(width);
    for (const RandomInstance& inst : instances) {
      batch.submit(inst.model, inst.options, inst.start);
    }
    const std::vector<BatchRunResult> results = batch.run_all();
    ASSERT_EQ(results.size(), kInstances);
    EXPECT_EQ(batch.stats().instances, kInstances);
    EXPECT_GT(batch.stats().lockstep_iterations, 0u);
    for (std::size_t i = 0; i < kInstances; ++i) {
      expect_matches_serial(instances[i], results[i], i);
    }
  }
}

// Degenerate widths: a single lane (pure serial schedule through the
// batch code paths) must agree too.
TEST(BatchAllocator, WidthOneMatchesSerial) {
  BatchAllocator batch(1);
  std::vector<RandomInstance> instances;
  for (std::size_t i = 0; i < 16; ++i) {
    instances.push_back(make_random_instance(7000 + i));
    batch.submit(instances.back().model, instances.back().options,
                 instances.back().start);
  }
  const std::vector<BatchRunResult> results = batch.run_all();
  ASSERT_EQ(results.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    expect_matches_serial(instances[i], results[i], i);
  }
}

// A start already at the optimum terminates without stepping: converged,
// zero iterations, x returned unchanged.
TEST(BatchAllocator, AlreadyConvergedLaneRetiresImmediately) {
  const SingleFileModel model(fap::core::make_paper_ring_problem());
  AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  const std::vector<double> start(4, 0.25);  // symmetric == optimal
  const AllocationResult serial =
      ResourceDirectedAllocator(model, options).run(start);
  ASSERT_TRUE(serial.converged);

  BatchAllocator batch(8);
  batch.submit(model, options, start);
  const std::vector<BatchRunResult> results = batch.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].converged, serial.converged);
  EXPECT_EQ(results[0].iterations, serial.iterations);
  EXPECT_TRUE(BitsEqual(results[0].cost, serial.cost));
}

TEST(BatchAllocator, RunAllOnEmptyQueueReturnsEmpty) {
  BatchAllocator batch;
  EXPECT_TRUE(batch.run_all().empty());
  EXPECT_EQ(batch.stats().instances, 0u);
}

// The allocator is reusable: a second round of submissions after
// run_all() behaves like a fresh instance.
TEST(BatchAllocator, ReusableAcrossRounds) {
  const RandomInstance inst = make_random_instance(42);
  BatchAllocator batch(4);
  batch.submit(inst.model, inst.options, inst.start);
  const std::vector<BatchRunResult> first = batch.run_all();
  EXPECT_EQ(batch.pending(), 0u);
  batch.submit(inst.model, inst.options, inst.start);
  const std::vector<BatchRunResult> second = batch.run_all();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(BitsEqual(first[0].cost, second[0].cost));
  EXPECT_EQ(first[0].iterations, second[0].iterations);
}

// RawInstance is the model-free submit path the catalog engine feeds
// ~1e6 instances through per pricing round: same fields by pointer, same
// validations, bitwise the same results as the model overload.
TEST(BatchAllocator, RawSubmitMatchesModelSubmitBitwise) {
  constexpr std::size_t kInstances = 48;
  std::vector<RandomInstance> instances;
  instances.reserve(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.push_back(make_random_instance(3000 + i));
  }
  for (const std::size_t width : {std::size_t{1}, std::size_t{16}}) {
    BatchAllocator via_model(width);
    BatchAllocator via_raw(width);
    for (const RandomInstance& inst : instances) {
      via_model.submit(inst.model, inst.options, inst.start);
      const SingleFileProblem& problem = inst.model.problem();
      BatchAllocator::RawInstance raw;
      raw.n = problem.mu.size();
      raw.total_rate = inst.model.total_rate();
      raw.k = problem.k;
      raw.delay = problem.delay;
      raw.access_cost = inst.model.access_costs().data();
      raw.mu = problem.mu.data();
      raw.caps = problem.storage_capacity.empty()
                     ? nullptr
                     : problem.storage_capacity.data();
      raw.start = inst.start.data();
      via_raw.submit(raw, inst.options);
    }
    const std::vector<BatchRunResult> expected = via_model.run_all();
    const std::vector<BatchRunResult> actual = via_raw.run_all();
    ASSERT_EQ(expected.size(), kInstances);
    ASSERT_EQ(actual.size(), kInstances);
    for (std::size_t i = 0; i < kInstances; ++i) {
      SCOPED_TRACE("instance " + std::to_string(i));
      EXPECT_EQ(expected[i].converged, actual[i].converged);
      EXPECT_EQ(expected[i].iterations, actual[i].iterations);
      EXPECT_TRUE(BitsEqual(expected[i].cost, actual[i].cost));
      ASSERT_EQ(expected[i].x.size(), actual[i].x.size());
      for (std::size_t j = 0; j < expected[i].x.size(); ++j) {
        EXPECT_TRUE(BitsEqual(expected[i].x[j], actual[i].x[j]))
            << "node " << j;
      }
    }
  }
}

// Pins dispatch to one kernel set for a scope (and restores env/CPUID
// dispatch on exit, even through assertion failures).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(fap::core::SimdLevel level) {
    fap::core::force_simd_level(level);
  }
  ~ScopedSimdLevel() { fap::core::clear_simd_override(); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
};

bool avx2_available() {
  return fap::core::avx2_kernels_compiled() && fap::core::cpu_supports_avx2();
}

// The second equivalence pin: the hand-vectorized AVX2 kernels must be
// bitwise equal to the portable scalar kernels — same randomized
// instance mix as the serial pin (capacity-clipped boundary lanes, M/M/c
// fallback lanes, dynamic-step lanes, retire/backfill/compaction churn
// from mixed iteration caps), both batch widths. Skipped (not silently
// passed) on machines without AVX2.
TEST(BatchAllocator, Avx2KernelsBitIdenticalToScalarKernels) {
  if (!avx2_available()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or CPU lacks AVX2";
  }
  constexpr std::size_t kInstances = 200;
  std::vector<RandomInstance> instances;
  instances.reserve(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.push_back(make_random_instance(7000 + i));
  }
  for (const std::size_t width : {std::size_t{8}, std::size_t{64}}) {
    std::vector<BatchRunResult> scalar_results;
    std::vector<BatchRunResult> avx2_results;
    {
      ScopedSimdLevel pin(fap::core::SimdLevel::kScalar);
      BatchAllocator batch(width);
      for (const RandomInstance& inst : instances) {
        batch.submit(inst.model, inst.options, inst.start);
      }
      scalar_results = batch.run_all();
      EXPECT_STREQ(batch.stats().kernels, "scalar");
    }
    {
      ScopedSimdLevel pin(fap::core::SimdLevel::kAvx2);
      BatchAllocator batch(width);
      for (const RandomInstance& inst : instances) {
        batch.submit(inst.model, inst.options, inst.start);
      }
      avx2_results = batch.run_all();
      EXPECT_STREQ(batch.stats().kernels, "avx2");
    }
    ASSERT_EQ(scalar_results.size(), avx2_results.size());
    for (std::size_t i = 0; i < kInstances; ++i) {
      SCOPED_TRACE("width " + std::to_string(width) + " instance " +
                   std::to_string(i));
      EXPECT_EQ(scalar_results[i].converged, avx2_results[i].converged);
      EXPECT_EQ(scalar_results[i].iterations, avx2_results[i].iterations);
      EXPECT_TRUE(BitsEqual(scalar_results[i].cost, avx2_results[i].cost));
      ASSERT_EQ(scalar_results[i].x.size(), avx2_results[i].x.size());
      for (std::size_t j = 0; j < scalar_results[i].x.size(); ++j) {
        EXPECT_TRUE(BitsEqual(scalar_results[i].x[j], avx2_results[i].x[j]))
            << "node " << j;
      }
    }
  }
}

// Whatever level dispatch picks on this machine must also be bitwise
// equal to the serial allocator (the headline pin runs dispatched; this
// one makes the triangle serial == scalar == dispatched explicit on a
// smaller mix).
TEST(BatchAllocator, DispatchedKernelsMatchSerialAndScalar) {
  constexpr std::size_t kInstances = 40;
  BatchAllocator dispatched(16);
  std::vector<RandomInstance> instances;
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.push_back(make_random_instance(9100 + i));
    dispatched.submit(instances.back().model, instances.back().options,
                      instances.back().start);
  }
  const std::vector<BatchRunResult> results = dispatched.run_all();
  EXPECT_STREQ(dispatched.stats().kernels,
               fap::core::simd_level_name(fap::core::active_simd_level()));
  for (std::size_t i = 0; i < kInstances; ++i) {
    expect_matches_serial(instances[i], results[i], i);
  }
}

// The raw path must enforce the same contracts SingleFileModel's
// constructor and check_feasible would — it bypasses both.
TEST(BatchAllocator, RawSubmitValidates) {
  const std::vector<double> access = {1.0, 2.0, 3.0};
  const std::vector<double> mu = {2.0, 2.0, 2.0};
  const std::vector<double> start = {1.0, 0.0, 0.0};
  BatchAllocator batch;
  AllocatorOptions options;
  BatchAllocator::RawInstance raw;
  raw.n = 3;
  raw.total_rate = 1.0;
  raw.k = 1.0;
  raw.delay = DelayModel::mm1();
  raw.access_cost = access.data();
  raw.mu = mu.data();
  raw.start = start.data();
  EXPECT_NO_THROW(batch.submit(raw, options));

  BatchAllocator::RawInstance bad = raw;
  bad.n = 0;
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  bad = raw;
  bad.access_cost = nullptr;
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  bad = raw;
  bad.total_rate = 0.0;
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  bad = raw;
  bad.k = -1.0;
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  bad = raw;
  bad.total_rate = 2.5;  // >= mu under the pure M/M/1 model: unstable
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  const std::vector<double> tight_caps = {0.4, 0.3, 0.2};  // Σ < 1
  bad = raw;
  bad.caps = tight_caps.data();
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  const std::vector<double> heavy = {0.8, 0.8, 0.0};  // Σ != 1
  bad = raw;
  bad.start = heavy.data();
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  const std::vector<double> over_cap = {0.9, 0.1, 0.0};
  const std::vector<double> caps = {0.5, 0.5, 0.5};
  bad = raw;
  bad.caps = caps.data();
  bad.start = over_cap.data();
  EXPECT_THROW(batch.submit(bad, options), fap::util::PreconditionError);
  AllocatorOptions trace_options;
  trace_options.record_trace = true;
  EXPECT_THROW(batch.submit(raw, trace_options),
               fap::util::PreconditionError);
}

TEST(BatchAllocator, RejectsUnsupportedOptionsAndInfeasibleStarts) {
  const SingleFileModel model(fap::core::make_paper_ring_problem());
  BatchAllocator batch;
  AllocatorOptions options;
  options.record_trace = true;
  EXPECT_THROW(batch.submit(model, options, std::vector<double>(4, 0.25)),
               fap::util::PreconditionError);
  options.record_trace = false;
  options.use_reference_active_set = true;
  EXPECT_THROW(batch.submit(model, options, std::vector<double>(4, 0.25)),
               fap::util::PreconditionError);
  options.use_reference_active_set = false;
  EXPECT_THROW(batch.submit(model, options, std::vector<double>(4, 0.5)),
               fap::util::PreconditionError);  // mass 2 != 1: infeasible
  options.alpha = -1.0;
  EXPECT_THROW(batch.submit(model, options, std::vector<double>(4, 0.25)),
               fap::util::PreconditionError);
}

}  // namespace
