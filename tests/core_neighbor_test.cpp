// Tests for the neighbors-only (gossip) algorithm of Section 8.2,
// including its structural invariants, convergence on interior optima,
// the message-cost advantage, and the documented dry-barrier limitation.
#include "core/neighbor_allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/multi_file.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

core::NeighborAllocatorOptions gossip_options(double alpha) {
  core::NeighborAllocatorOptions options;
  options.alpha = alpha;
  options.epsilon = 1e-4;
  options.max_iterations = 200000;
  options.record_trace = true;
  return options;
}

TEST(NeighborAllocator, ConvergesToTheOptimumOnThePaperRing) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const net::Topology ring = net::make_ring(4, 1.0);
  const core::NeighborAllocator allocator(model, ring, gossip_options(0.1));
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 2e-3);
  }
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

TEST(NeighborAllocator, FeasibleAndMonotoneEveryIteration) {
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(3, 7));
  fap::util::Rng rng(55);
  const net::Topology graph = net::make_erdos_renyi(7, 0.5, 1.0, 2.0, rng);
  core::NeighborAllocatorOptions options = gossip_options(0.03);
  options.max_iterations = 5000;
  const core::NeighborAllocator allocator(model, graph, options);
  const core::AllocationResult result =
      allocator.run(fap::testing::random_feasible(model, 8));
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t t = 0; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    for (const double xi : result.trace[t].x) {
      EXPECT_GE(xi, 0.0);
    }
    if (t > 0) {
      EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-10);
    }
  }
}

class NeighborTopologyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NeighborTopologyTest, ReachesTheGlobalOptimumWhenInteriorOnManyGraphs) {
  const std::string name = GetParam();
  const std::size_t n = 8;
  net::Topology graph = net::make_ring(n, 1.0);
  if (name == "complete") {
    graph = net::make_complete(n, 1.0);
  } else if (name == "star") {
    graph = net::make_star(n, 1.0);
  } else if (name == "line") {
    graph = net::make_line(n, 1.0);
  } else if (name == "grid") {
    graph = net::make_grid(2, 4, 1.0);
  }
  // The optimization network equals the communication graph.
  const core::SingleFileModel model(core::make_problem(
      graph, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/1.0));
  core::NeighborAllocatorOptions options = gossip_options(0.05);
  options.epsilon = 1e-5;
  const core::NeighborAllocator allocator(model, graph, options);
  std::vector<double> start(n, 0.0);
  start[0] = 1.0;
  const core::AllocationResult result = allocator.run(start);
  ASSERT_TRUE(result.converged) << name;

  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-4 * (1.0 + reference.cost))
      << name;
}

INSTANTIATE_TEST_SUITE_P(Topologies, NeighborTopologyTest,
                         ::testing::Values("ring", "complete", "star", "line",
                                           "grid"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(NeighborAllocator, MessageCountIsTwoPerEdge) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const net::Topology ring = net::make_ring(4, 1.0);
  const core::NeighborAllocator allocator(model, ring, gossip_options(0.1));
  EXPECT_EQ(allocator.messages_per_iteration(), 8u);  // 2 * 4 edges
  // Compare: broadcast needs N(N-1) = 12 — and the gap widens with N.
}

TEST(NeighborAllocator, SlowerThanBroadcastButCheaperPerRoundOnSparseGraphs) {
  const std::size_t n = 12;
  const net::Topology ring = net::make_ring(n, 1.0);
  const core::SingleFileModel model(core::make_problem(
      ring, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/1.0));
  std::vector<double> start(n, 0.0);
  start[0] = 1.0;

  core::NeighborAllocatorOptions gossip = gossip_options(0.1);
  gossip.epsilon = 1e-3;
  const core::NeighborAllocator neighbor(model, ring, gossip);
  const core::AllocationResult gossip_run = neighbor.run(start);
  ASSERT_TRUE(gossip_run.converged);

  core::AllocatorOptions broadcast;
  broadcast.alpha = 0.3;
  broadcast.epsilon = 1e-3;
  broadcast.max_iterations = 100000;
  const core::ResourceDirectedAllocator global(model, broadcast);
  const core::AllocationResult broadcast_run = global.run(start);
  ASSERT_TRUE(broadcast_run.converged);

  // Diffusion takes more iterations on a diameter-6 ring...
  EXPECT_GT(gossip_run.iterations, broadcast_run.iterations);
  // ...but pays 2|E| = 24 messages per round instead of N(N-1) = 132.
  EXPECT_EQ(neighbor.messages_per_iteration(), 24u);
  EXPECT_LT(neighbor.messages_per_iteration(), n * (n - 1));
  // Both reach the same optimum.
  EXPECT_NEAR(gossip_run.cost, broadcast_run.cost, 1e-3);
}

TEST(NeighborAllocator, DryBarrierLimitationIsReal) {
  // Construct the documented pathological case: an expensive middle node
  // on a line graph separates two regions. The gossip algorithm comes to
  // rest with unequal marginal utilities across the barrier, strictly
  // worse than the global optimum found with all-to-all communication.
  const std::size_t n = 3;
  net::Topology line = net::make_line(n, 1.0);
  core::SingleFileProblem problem = core::make_problem(
      line, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/0.05);
  // Node 1 (the relay) is outrageously expensive to access.
  for (std::size_t j = 0; j < n; ++j) {
    if (j != 1) {
      problem.comm.set_cost(j, 1, 200.0);
    }
  }
  const core::SingleFileModel model(std::move(problem));

  core::NeighborAllocatorOptions options = gossip_options(0.02);
  options.epsilon = 1e-5;
  options.max_iterations = 400000;
  const core::NeighborAllocator allocator(model, line, options);
  // Start with everything at node 0; node 2 can only be reached through
  // the dry, expensive node 1.
  const core::AllocationResult gossip_run = allocator.run({1.0, 0.0, 0.0});

  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  // Either the gossip run is stuck above the optimum, or (if mass dribbled
  // through before node 1 dried out) it matches; assert only that the
  // documented failure CAN be observed from this start.
  EXPECT_TRUE(gossip_run.converged);
  EXPECT_GT(gossip_run.cost, reference.cost + 1e-3)
      << "expected the dry-barrier rest point to be suboptimal";
}

TEST(NeighborAllocator, MultiFileGossipConservesEachFileSeparately) {
  // Two files diffusing over the same ring: per-group conservation and
  // convergence to the centralized optimum.
  const net::Topology ring = net::make_ring(4, 1.0);
  const core::MultiFileModel model(core::MultiFileProblem{
      net::all_pairs_shortest_paths(ring),
      {{0.15, 0.15, 0.05, 0.05}, {0.05, 0.05, 0.20, 0.10}},
      std::vector<double>(4, 1.5),
      1.0,
      fap::queueing::DelayModel()});
  core::NeighborAllocatorOptions options = gossip_options(0.1);
  options.epsilon = 1e-5;
  options.max_iterations = 500000;
  const core::NeighborAllocator allocator(model, ring, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  double sum0 = 0.0;
  double sum1 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    sum0 += result.x[model.index(0, i)];
    sum1 += result.x[model.index(1, i)];
  }
  EXPECT_NEAR(sum0, 1.0, 1e-9);
  EXPECT_NEAR(sum1, 1.0, 1e-9);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-3 * (1.0 + reference.cost));
}

TEST(NeighborAllocator, RejectsInvalidSetups) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const net::Topology wrong_size = net::make_ring(5, 1.0);
  EXPECT_THROW(core::NeighborAllocator(model, wrong_size,
                                       core::NeighborAllocatorOptions{}),
               fap::util::PreconditionError);
  net::Topology disconnected(4);
  disconnected.add_edge(0, 1, 1.0);
  disconnected.add_edge(2, 3, 1.0);
  EXPECT_THROW(core::NeighborAllocator(model, disconnected,
                                       core::NeighborAllocatorOptions{}),
               fap::util::PreconditionError);
}

}  // namespace
