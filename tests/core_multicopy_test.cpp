// Tests for the Section 7.3 multicopy driver: oscillation detection, α
// decay, cost-difference halting, and the lowest-observed-point fallback.
#include "core/multicopy_allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/integral.hpp"
#include "core/ring_model.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;

core::MultiCopyOptions default_options() {
  core::MultiCopyOptions options;
  options.alpha = 0.1;
  options.record_trace = true;
  options.max_iterations = 3000;
  return options;
}

TEST(MultiCopyAllocator, DelayDominatedUnitRingConvergesSmoothly) {
  // Section 7.3: with unit link costs "the delay term dominates the
  // communication cost" and the profile is smooth.
  const core::RingModel model{
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0})};
  const core::MultiCopyAllocator allocator(model, default_options());
  const core::MultiCopyResult result =
      allocator.run({0.9, 0.5, 0.35, 0.25});
  EXPECT_TRUE(result.converged);
  // By symmetry the optimum is uniform: x_i = 0.5 each.
  for (const double xi : result.best_x) {
    EXPECT_NEAR(xi, 0.5, 0.05);
  }
  EXPECT_LT(result.best_cost, model.cost({0.9, 0.5, 0.35, 0.25}));
}

TEST(MultiCopyAllocator, CommDominatedRingOscillates) {
  // Link costs (4,1,1,1): "a dominant communication cost is likely to
  // result in greater oscillation".
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  core::MultiCopyOptions options = default_options();
  options.decay_interval = 1000000;  // disable decay to observe raw behavior
  options.cost_epsilon = 1e-12;      // and the ΔC halting rule
  options.max_iterations = 300;
  const core::MultiCopyAllocator allocator(model, options);
  const core::MultiCopyResult result =
      allocator.run({0.9, 0.5, 0.35, 0.25});
  EXPECT_GT(result.oscillation_count, 0u);
}

TEST(MultiCopyAllocator, UnitRingOscillatesLessThanCommDominatedRing) {
  // Section 7.3's claim is about oscillation *magnitude*: the
  // communication-dominated ring swings by whole link costs, while the
  // delay-dominated unit ring shows only small ripples. Compare the cost
  // amplitude over the tail of each run.
  core::MultiCopyOptions options = default_options();
  options.decay_interval = 1000000;
  options.cost_epsilon = 1e-12;
  options.max_iterations = 300;

  const auto tail_amplitude = [&options](const core::RingModel& model) {
    const core::MultiCopyResult result =
        core::MultiCopyAllocator(model, options).run({0.9, 0.5, 0.35, 0.25});
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t t = result.trace.size() / 2; t < result.trace.size();
         ++t) {
      lo = std::min(lo, result.trace[t].cost);
      hi = std::max(hi, result.trace[t].cost);
    }
    return hi - lo;
  };
  const core::RingModel comm_ring{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const core::RingModel unit_ring{
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0})};
  EXPECT_LT(tail_amplitude(unit_ring), tail_amplitude(comm_ring));
}

TEST(MultiCopyAllocator, SmallerAlphaGivesSmallerOscillations) {
  // Figure 9: decreasing α from 0.1 to 0.05 shrinks the oscillation
  // amplitude around the optimum.
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  auto amplitude_with_alpha = [&model](double alpha) {
    core::MultiCopyOptions options;
    options.alpha = alpha;
    options.decay_interval = 1000000;  // no decay: raw oscillation
    options.cost_epsilon = 1e-12;
    options.max_iterations = 400;
    options.record_trace = true;
    const core::MultiCopyAllocator allocator(model, options);
    const core::MultiCopyResult result =
        allocator.run({0.9, 0.5, 0.35, 0.25});
    // Amplitude over the tail (after the rapid phase).
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t t = result.trace.size() / 2; t < result.trace.size();
         ++t) {
      lo = std::min(lo, result.trace[t].cost);
      hi = std::max(hi, result.trace[t].cost);
    }
    return hi - lo;
  };
  EXPECT_LT(amplitude_with_alpha(0.05), amplitude_with_alpha(0.1) + 1e-12);
}

TEST(MultiCopyAllocator, AlphaDecayEnablesHalting) {
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  core::MultiCopyOptions options = default_options();
  options.decay_interval = 20;
  options.alpha_decay = 0.5;
  options.cost_epsilon = 1e-7;
  options.max_iterations = 5000;
  const core::MultiCopyAllocator allocator(model, options);
  const core::MultiCopyResult result =
      allocator.run({0.9, 0.5, 0.35, 0.25});
  EXPECT_TRUE(result.converged);
  // α must have decayed below its initial value.
  EXPECT_LT(result.final_alpha, options.alpha);
}

TEST(MultiCopyAllocator, BestCostIsMinimumOfTrace) {
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const core::MultiCopyAllocator allocator(model, default_options());
  const core::MultiCopyResult result =
      allocator.run({0.9, 0.5, 0.35, 0.25});
  for (const core::IterationRecord& rec : result.trace) {
    EXPECT_GE(rec.cost, result.best_cost - 1e-12);
  }
  EXPECT_LE(result.best_cost, result.final_cost + 1e-12);
  EXPECT_NEAR(model.cost(result.best_x), result.best_cost, 1e-12);
}

TEST(MultiCopyAllocator, FeasibilityMaintainedThroughout) {
  const core::RingModel model(
      fap::testing::random_ring_problem(17, 6, 2.0));
  const core::MultiCopyAllocator allocator(model, default_options());
  const core::MultiCopyResult result =
      allocator.run(fap::testing::random_feasible(model, 5));
  for (const core::IterationRecord& rec : result.trace) {
    EXPECT_NEAR(fap::util::sum(rec.x), 2.0, 1e-9);
    for (const double xi : rec.x) {
      EXPECT_GE(xi, 0.0);
    }
  }
}

TEST(MultiCopyAllocator, FragmentedBeatsBestIntegralPlacement) {
  // The continuous optimum found by the algorithm must cost no more than
  // the best placement of two whole copies (the integral baseline).
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  core::MultiCopyOptions options = default_options();
  options.max_iterations = 5000;
  const core::MultiCopyAllocator allocator(model, options);
  const core::MultiCopyResult result =
      allocator.run({0.5, 0.5, 0.5, 0.5});
  const fap::baselines::IntegralResult integral =
      fap::baselines::best_integral_ring(model);
  EXPECT_LE(result.best_cost, integral.cost + 1e-9);
}

TEST(MultiCopyAllocator, RandomRingsImproveFromRandomStarts) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const core::RingModel model(
        fap::testing::random_ring_problem(seed, 5, 2.0));
    const core::MultiCopyAllocator allocator(model, default_options());
    const std::vector<double> start =
        fap::testing::random_feasible(model, seed + 50);
    const core::MultiCopyResult result = allocator.run(start);
    EXPECT_LE(result.best_cost, model.cost(start) + 1e-12) << "seed " << seed;
  }
}

TEST(MultiCopyAllocator, RejectsInvalidOptions) {
  const core::RingModel model(
      fap::testing::random_ring_problem(3, 4, 2.0));
  core::MultiCopyOptions bad;
  bad.alpha_decay = 1.0;
  EXPECT_THROW(core::MultiCopyAllocator(model, bad),
               fap::util::PreconditionError);
  bad = core::MultiCopyOptions{};
  bad.decay_interval = 0;
  EXPECT_THROW(core::MultiCopyAllocator(model, bad),
               fap::util::PreconditionError);
}

}  // namespace
