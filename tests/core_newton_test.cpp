// Tests for the second-derivative algorithm (Section 8.2): same optima and
// invariants as the first-order algorithm, plus the two properties the
// paper claims for it — scale resilience and step-size tolerance.
#include "core/newton_allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

core::NewtonAllocatorOptions newton_options(double alpha) {
  core::NewtonAllocatorOptions options;
  options.alpha = alpha;
  options.epsilon = 1e-3;
  options.record_trace = true;
  return options;
}

TEST(NewtonAllocator, ConvergesOnThePaperRing) {
  const core::SingleFileModel model = paper_model();
  const core::NewtonAllocator allocator(model, newton_options(0.5));
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 2e-3);
  }
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

class NewtonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NewtonPropertyTest, FeasibleAndMonotoneAtEveryIteration) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 7));
  core::NewtonAllocatorOptions options = newton_options(0.3);
  options.max_iterations = 2000;
  const core::NewtonAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(fap::testing::random_feasible(model, seed + 3));
  for (std::size_t t = 0; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    for (const double xi : result.trace[t].x) {
      EXPECT_GE(xi, 0.0);
    }
    if (t > 0) {
      EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-10);
    }
  }
}

TEST_P(NewtonPropertyTest, ReachesTheSameOptimumAsFirstOrder) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 7));
  core::NewtonAllocatorOptions options;
  options.alpha = 0.5;
  options.epsilon = 1e-7;
  options.max_iterations = 100000;
  const core::NewtonAllocator newton(model, options);
  const core::AllocationResult newton_result =
      newton.run(fap::testing::random_feasible(model, seed + 5));
  ASSERT_TRUE(newton_result.converged);

  const fap::baselines::ProjectedGradientResult reference =
      fap::baselines::projected_gradient_solve(
          model, core::uniform_allocation(model));
  EXPECT_NEAR(newton_result.cost, reference.cost,
              1e-5 * (1.0 + std::fabs(reference.cost)));
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, NewtonPropertyTest,
                         ::testing::Range(1, 9));

TEST(NewtonAllocator, ScaleInvarianceOfTheIterationPath) {
  // Multiply every cost in the problem (link costs and k) by 100: the
  // first-order algorithm with fixed α behaves very differently, while the
  // second-derivative algorithm's trajectory is unchanged (Section 8.2:
  // "resilient to changes in the scale of the problem").
  fap::core::SingleFileProblem base = core::make_paper_ring_problem();
  fap::core::SingleFileProblem scaled = base;
  const double factor = 100.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      scaled.comm.set_cost(i, j, base.comm.cost(i, j) * factor);
    }
  }
  scaled.k = base.k * factor;
  const core::SingleFileModel model_base(base);
  const core::SingleFileModel model_scaled(scaled);

  core::NewtonAllocatorOptions options;
  options.alpha = 0.5;
  options.epsilon = 1e-3;
  options.record_trace = true;
  options.max_iterations = 1000;
  // ε is a spread of marginal utilities, which scales with the problem;
  // scale it to keep the termination point comparable.
  core::NewtonAllocatorOptions options_scaled = options;
  options_scaled.epsilon = options.epsilon * factor;

  const core::NewtonAllocator newton_base(model_base, options);
  const core::NewtonAllocator newton_scaled(model_scaled, options_scaled);
  const core::AllocationResult r1 = newton_base.run({0.8, 0.1, 0.1, 0.0});
  const core::AllocationResult r2 = newton_scaled.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t t = 0; t < r1.trace.size(); ++t) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(r1.trace[t].x[i], r2.trace[t].x[i], 1e-9);
    }
  }
}

TEST(NewtonAllocator, FirstOrderIsNotScaleInvariant) {
  // Control for the previous test: scaling every cost *down* by 100 makes
  // the first-order algorithm's fixed-α steps 100x smaller, changing its
  // iteration count dramatically. (Scaling *up* instead hits the θ
  // overshoot clipping, which is itself scale-invariant.)
  fap::core::SingleFileProblem base = core::make_paper_ring_problem();
  fap::core::SingleFileProblem scaled = base;
  const double factor = 0.01;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      scaled.comm.set_cost(i, j, base.comm.cost(i, j) * factor);
    }
  }
  scaled.k = base.k * factor;
  const core::SingleFileModel model_base(base);
  const core::SingleFileModel model_scaled(scaled);
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  options.max_iterations = 100000;
  core::AllocatorOptions options_scaled = options;
  options_scaled.epsilon = options.epsilon * factor;
  const core::ResourceDirectedAllocator first_base(model_base, options);
  const core::ResourceDirectedAllocator first_scaled(model_scaled,
                                                     options_scaled);
  const auto r1 = first_base.run({0.8, 0.1, 0.1, 0.0});
  const auto r2 = first_scaled.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_NE(r1.iterations, r2.iterations);
}

TEST(NewtonAllocator, WideStepSizeToleranceOnThePaperRing) {
  // Section 8.2: "using second derivatives increases the tolerance of the
  // algorithm towards the selection of the stepsize parameter". Every α
  // across two orders of magnitude must converge to the optimum.
  const core::SingleFileModel model = paper_model();
  for (const double alpha : {0.05, 0.2, 0.5, 1.0}) {
    core::NewtonAllocatorOptions options;
    options.alpha = alpha;
    options.epsilon = 1e-3;
    options.max_iterations = 100000;
    const core::NewtonAllocator allocator(model, options);
    const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
    ASSERT_TRUE(result.converged) << "alpha=" << alpha;
    EXPECT_NEAR(result.cost, 1.8, 1e-3) << "alpha=" << alpha;
  }
}

TEST(NewtonAllocator, RejectsInvalidOptions) {
  const core::SingleFileModel model = paper_model();
  core::NewtonAllocatorOptions bad;
  bad.alpha = 0.0;
  EXPECT_THROW(core::NewtonAllocator(model, bad),
               fap::util::PreconditionError);
  bad = core::NewtonAllocatorOptions{};
  bad.curvature_floor = 0.0;
  EXPECT_THROW(core::NewtonAllocator(model, bad),
               fap::util::PreconditionError);
}

}  // namespace
