// CatalogSolver acceptance pins:
//
//   * K = 1 with slack capacity IS the paper's algorithm — the catalog
//     result is bitwise equal to the serial ResourceDirectedAllocator run
//     on the identical single-file problem (handed the solver's own
//     assembled access-cost vector via access_cost_override);
//   * the whole CatalogResult is a pure function of (spec, options):
//     bit-identical across --jobs and batch-width choices;
//   * with slack capacity the engine degenerates to K independent
//     single-file solves at zero prices, each matching its serial twin;
//   * under tight capacity the returned allocation is FEASIBLE: residual
//     <= 1e-9 in volume units, every object's fractions still sum to 1.
#include "catalog/catalog_solver.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog_spec.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "net/shortest_paths.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

using fap::catalog::CatalogOptions;
using fap::catalog::CatalogResult;
using fap::catalog::CatalogSolver;
using fap::catalog::CatalogSpec;
using fap::catalog::make_synthetic_catalog;
using fap::catalog::Placement;
using fap::catalog::SyntheticCatalogOptions;
using fap::core::AllocationResult;
using fap::core::ResourceDirectedAllocator;
using fap::core::SingleFileModel;
using fap::core::SingleFileProblem;
using fap::util::PreconditionError;

::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << (b - a);
}

// Object o's dense allocation vector from the CSR result.
std::vector<double> dense_allocation(const CatalogSpec& spec,
                                     const CatalogResult& result,
                                     std::size_t o) {
  std::vector<double> x(spec.node_count(), 0.0);
  for (std::uint32_t p = result.offsets[o]; p < result.offsets[o + 1]; ++p) {
    x[result.placements[p].node] += result.placements[p].fraction;
  }
  return x;
}

// The serial twin of catalog object o at the given prices: a
// SingleFileModel fed the solver's own priced access-cost vector through
// access_cost_override (no comm matrix, λ concentrated anywhere — the
// override makes the workload's spatial shape irrelevant), run by the
// serial allocator from the solver's own deterministic start.
AllocationResult serial_reference(const CatalogSpec& spec,
                                  const CatalogSolver& solver, std::size_t o,
                                  const std::vector<double>& prices) {
  std::vector<double> lambda(spec.node_count(), 0.0);
  lambda[spec.home[o]] = spec.rate[o];
  SingleFileProblem problem{fap::net::CostMatrix(0),
                            std::move(lambda),
                            spec.mu,
                            spec.k,
                            spec.delay,
                            {},
                            {},
                            solver.object_access_cost(o, prices),
                            nullptr};
  const SingleFileModel model(std::move(problem));
  const ResourceDirectedAllocator serial(model, solver.options().inner);
  return serial.run(solver.object_start(o, prices));
}

void expect_identical(const CatalogResult& a, const CatalogResult& b) {
  EXPECT_EQ(a.offsets, b.offsets);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t p = 0; p < a.placements.size(); ++p) {
    EXPECT_EQ(a.placements[p].node, b.placements[p].node) << "entry " << p;
    EXPECT_TRUE(BitsEqual(a.placements[p].fraction, b.placements[p].fraction))
        << "entry " << p;
  }
  ASSERT_EQ(a.prices.size(), b.prices.size());
  for (std::size_t i = 0; i < a.prices.size(); ++i) {
    EXPECT_TRUE(BitsEqual(a.prices[i], b.prices[i])) << "node " << i;
    EXPECT_TRUE(BitsEqual(a.node_load[i], b.node_load[i])) << "node " << i;
  }
  EXPECT_TRUE(BitsEqual(a.residual, b.residual));
  EXPECT_TRUE(BitsEqual(a.pre_repair_residual, b.pre_repair_residual));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.price_converged, b.price_converged);
  EXPECT_EQ(a.oscillations, b.oscillations);
  EXPECT_EQ(a.repair_moves, b.repair_moves);
  EXPECT_EQ(a.inner_iterations, b.inner_iterations);
  EXPECT_EQ(a.unconverged_objects, b.unconverged_objects);
  EXPECT_TRUE(BitsEqual(a.hit_rate, b.hit_rate));
  EXPECT_TRUE(BitsEqual(a.external_traffic, b.external_traffic));
  EXPECT_TRUE(BitsEqual(a.mean_fragments, b.mean_fragments));
}

// The ISSUE acceptance pin: K = 1, slack capacity — the catalog engine
// must reproduce the serial paper algorithm bit for bit.
TEST(CatalogSolver, SingleObjectSlackCapacityMatchesSerialBitwise) {
  SyntheticCatalogOptions synth;
  synth.objects = 1;
  synth.nodes = 9;
  synth.headroom = 2.0;
  const CatalogSpec spec = make_synthetic_catalog(synth, 11);
  const CatalogSolver solver(spec, CatalogOptions{});
  const CatalogResult result = solver.solve();

  // Slack capacity: the price loop converges at round 0 with zero prices,
  // no repair touches anything.
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_TRUE(result.price_converged);
  EXPECT_EQ(result.repair_moves, 0u);
  EXPECT_DOUBLE_EQ(result.pre_repair_residual, 0.0);
  for (const double p : result.prices) {
    EXPECT_EQ(p, 0.0);
  }

  const std::vector<double> zero_prices(spec.node_count(), 0.0);
  const AllocationResult expected =
      serial_reference(spec, solver, 0, zero_prices);
  EXPECT_TRUE(expected.converged);
  EXPECT_EQ(result.inner_iterations, expected.iterations);
  EXPECT_EQ(result.unconverged_objects, 0u);
  const std::vector<double> x = dense_allocation(spec, result, 0);
  ASSERT_EQ(x.size(), expected.x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_TRUE(BitsEqual(expected.x[i], x[i])) << "node " << i;
  }
}

// With slack everywhere the catalog is exactly K independent single-file
// problems: every object's allocation matches its serial twin.
TEST(CatalogSolver, SlackCapacityDecomposesIntoIndependentSolves) {
  SyntheticCatalogOptions synth;
  synth.objects = 40;
  synth.nodes = 8;
  synth.headroom = 1.5;
  synth.zipf_s = 1.0;
  const CatalogSpec spec = make_synthetic_catalog(synth, 23);
  const CatalogSolver solver(spec, CatalogOptions{});
  const CatalogResult result = solver.solve();
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_TRUE(result.price_converged);
  EXPECT_EQ(result.repair_moves, 0u);

  const std::vector<double> zero_prices(spec.node_count(), 0.0);
  for (std::size_t o = 0; o < spec.object_count(); ++o) {
    SCOPED_TRACE("object " + std::to_string(o));
    const AllocationResult expected =
        serial_reference(spec, solver, o, zero_prices);
    const std::vector<double> x = dense_allocation(spec, result, o);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_TRUE(BitsEqual(expected.x[i], x[i])) << "node " << i;
    }
  }
}

// Determinism: jobs and batch width are pure throughput knobs — the full
// result struct is bit-identical, including after priced rounds + repair.
TEST(CatalogSolver, JobsAndBatchWidthAreUnobservable) {
  SyntheticCatalogOptions synth;
  synth.objects = 300;
  synth.nodes = 12;
  synth.headroom = 0.12;  // tight: prices move, repair likely engages
  synth.zipf_s = 1.1;
  const CatalogSpec spec = make_synthetic_catalog(synth, 5);

  CatalogOptions serial;
  serial.jobs = 1;
  const CatalogResult reference = CatalogSolver(spec, serial).solve();
  EXPECT_GE(reference.rounds, 1u);

  CatalogOptions parallel = serial;
  parallel.jobs = 4;
  expect_identical(reference, CatalogSolver(spec, parallel).solve());

  CatalogOptions narrow = serial;
  narrow.jobs = 8;
  narrow.batch_width = 7;  // lane partitioning must be unobservable too
  expect_identical(reference, CatalogSolver(spec, narrow).solve());
}

// Feasibility under pressure: tight budgets, hot Zipf head. The returned
// allocation must respect every capacity to 1e-9 volume units and keep
// every object whole.
TEST(CatalogSolver, TightCapacityYieldsFeasibleAllocation) {
  SyntheticCatalogOptions synth;
  synth.objects = 2000;
  synth.nodes = 16;
  synth.headroom = 0.1;
  synth.zipf_s = 0.9;
  const CatalogSpec spec = make_synthetic_catalog(synth, 77);
  const CatalogSolver solver(spec, CatalogOptions{});
  const CatalogResult result = solver.solve();

  EXPECT_LE(result.residual, 1e-9);
  for (std::size_t i = 0; i < spec.node_count(); ++i) {
    EXPECT_LE(result.node_load[i], spec.node_capacity[i] + 1e-9)
        << "node " << i;
  }
  if (result.pre_repair_residual > 1e-9) {
    EXPECT_GE(result.repair_moves, 1u);
  }

  // CSR integrity + per-object conservation (Σ_i x_i^o = 1).
  ASSERT_EQ(result.offsets.size(), spec.object_count() + 1);
  EXPECT_EQ(result.offsets.front(), 0u);
  EXPECT_EQ(result.offsets.back(), result.placements.size());
  for (std::size_t o = 0; o < spec.object_count(); ++o) {
    ASSERT_LE(result.offsets[o], result.offsets[o + 1]);
    fap::util::NeumaierSum mass;
    for (std::uint32_t p = result.offsets[o]; p < result.offsets[o + 1];
         ++p) {
      ASSERT_LT(result.placements[p].node, spec.node_count());
      EXPECT_GT(result.placements[p].fraction, 0.0);
      EXPECT_LE(result.placements[p].fraction, 1.0 + 1e-12);
      mass.add(result.placements[p].fraction);
    }
    EXPECT_NEAR(mass.value(), 1.0, 1e-9) << "object " << o;
  }

  // Node-load accounting self-consistency: the reported loads are the
  // compensated sums over the reported placements.
  std::vector<fap::util::NeumaierSum> loads(spec.node_count());
  for (std::size_t o = 0; o < spec.object_count(); ++o) {
    for (std::uint32_t p = result.offsets[o]; p < result.offsets[o + 1];
         ++p) {
      loads[result.placements[p].node].add(spec.volume[o] *
                                           result.placements[p].fraction);
    }
  }
  for (std::size_t i = 0; i < spec.node_count(); ++i) {
    EXPECT_TRUE(BitsEqual(loads[i].value(), result.node_load[i]))
        << "node " << i;
  }

  EXPECT_GE(result.hit_rate, 0.0);
  EXPECT_LE(result.hit_rate, 1.0);
  EXPECT_GT(result.external_traffic, 0.0);
  EXPECT_GE(result.mean_fragments, 1.0);
}

// Warm-started re-solve: seeding the price loop with a previous solve's
// final prices must stay feasible and not spend more rounds than the
// cold start — the point of carrying prices across perturbed specs.
TEST(CatalogSolver, WarmStartedResolveIsFeasibleAndNoSlower) {
  SyntheticCatalogOptions synth;
  synth.objects = 2000;
  synth.nodes = 16;
  synth.headroom = 0.1;
  synth.zipf_s = 0.9;
  const CatalogSpec spec = make_synthetic_catalog(synth, 77);
  const CatalogResult cold = CatalogSolver(spec, CatalogOptions{}).solve();
  EXPECT_GT(cold.rounds, 1u);  // tight capacity: prices actually move

  CatalogOptions warm_options;
  warm_options.price.initial_prices = cold.prices;
  const CatalogResult warm = CatalogSolver(spec, warm_options).solve();
  EXPECT_LE(warm.residual, 1e-9);
  EXPECT_LE(warm.rounds, cold.rounds);
  for (std::size_t i = 0; i < spec.node_count(); ++i) {
    EXPECT_LE(warm.node_load[i], spec.node_capacity[i] + 1e-9)
        << "node " << i;
  }
  for (std::size_t o = 0; o < spec.object_count(); ++o) {
    fap::util::NeumaierSum mass;
    for (std::uint32_t p = warm.offsets[o]; p < warm.offsets[o + 1]; ++p) {
      mass.add(warm.placements[p].fraction);
    }
    EXPECT_NEAR(mass.value(), 1.0, 1e-9) << "object " << o;
  }

  // Explicit zeros are the cold start, bit for bit.
  CatalogOptions zeros;
  zeros.price.initial_prices.assign(spec.node_count(), 0.0);
  expect_identical(cold, CatalogSolver(spec, zeros).solve());
}

// A hand-built spec where the optimum is obvious: full locality, huge
// capacity, cheap home service — everything lands at home, so hit rate
// is exactly 1 and external traffic exactly 0.
TEST(CatalogSolver, FullyLocalCatalogHitsAtHome) {
  CatalogSpec spec;
  spec.comm =
      fap::net::all_pairs_shortest_paths(fap::net::make_complete(2, 1.0));
  spec.node_capacity = {10.0, 10.0};
  spec.mu = {50.0, 50.0};
  spec.k = 1.0;
  spec.origin_weight = {0.5, 0.5};
  spec.locality = 1.0;
  spec.rate = {1.0, 1.0, 1.0, 1.0};
  spec.volume = {1.0, 1.0, 1.0, 1.0};
  spec.home = {0, 1, 0, 1};

  const CatalogResult result = CatalogSolver(spec, CatalogOptions{}).solve();
  EXPECT_DOUBLE_EQ(result.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(result.external_traffic, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_fragments, 1.0);
  for (std::size_t o = 0; o < spec.object_count(); ++o) {
    const std::vector<double> x = dense_allocation(spec, result, o);
    EXPECT_EQ(x[spec.home[o]], 1.0) << "object " << o;
  }
  EXPECT_TRUE(BitsEqual(result.node_load[0], 2.0));
  EXPECT_TRUE(BitsEqual(result.node_load[1], 2.0));
}

// The synthetic generator is a pure function of (options, seed), and the
// cache-aware overload returns the identical spec.
TEST(CatalogSpecTest, SyntheticCatalogIsDeterministic) {
  SyntheticCatalogOptions synth;
  synth.objects = 128;
  synth.nodes = 10;
  const CatalogSpec a = make_synthetic_catalog(synth, 7);
  const CatalogSpec b = make_synthetic_catalog(synth, 7);
  EXPECT_EQ(a.rate, b.rate);
  EXPECT_EQ(a.volume, b.volume);
  EXPECT_EQ(a.home, b.home);
  EXPECT_EQ(a.node_capacity, b.node_capacity);
  EXPECT_EQ(a.origin_weight, b.origin_weight);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    for (std::size_t j = 0; j < a.node_count(); ++j) {
      EXPECT_TRUE(BitsEqual(a.comm.row(i)[j], b.comm.row(i)[j]));
    }
  }

  fap::net::CostMatrixCache cache;
  const CatalogSpec c = make_synthetic_catalog(synth, 7, cache);
  EXPECT_EQ(a.volume, c.volume);
  EXPECT_EQ(a.home, c.home);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    for (std::size_t j = 0; j < a.node_count(); ++j) {
      EXPECT_TRUE(BitsEqual(a.comm.row(i)[j], c.comm.row(i)[j]));
    }
  }

  const CatalogSpec d = make_synthetic_catalog(synth, 8);
  EXPECT_NE(a.volume, d.volume);  // different seed, different catalog

  // Rates follow the Zipf head-first ordering and keep queues stable.
  EXPECT_GT(a.rate.front(), a.rate.back());
  EXPECT_LT(a.rate.front(), a.mu.front());
}

// Providers are unobservable in the catalog result: the identical
// synthetic catalog over a geo-tier tree, solved through the dense matrix,
// the row-based provider, and the implicit tier-arithmetic provider, must
// return bit-identical CatalogResults — including after priced rounds.
TEST(CatalogSolver, ProviderBackedCatalogMatchesDenseBitwise) {
  const fap::net::TieredNetwork tiered = fap::net::make_geo_tiers(2, 2, 2);
  SyntheticCatalogOptions synth;
  synth.objects = 96;
  synth.nodes = tiered.topology.node_count();  // 21
  synth.headroom = 0.12;  // tight: the price loop actually engages
  synth.zipf_s = 1.0;
  const std::uint64_t seed = 29;

  const CatalogSpec dense = make_synthetic_catalog(
      synth, seed, fap::net::all_pairs_shortest_paths(tiered.topology));
  const CatalogResult reference = CatalogSolver(dense, CatalogOptions{}).solve();

  const CatalogSpec rows = make_synthetic_catalog(
      synth, seed,
      std::make_shared<fap::net::RowCostProvider>(tiered.topology,
                                                  /*row_cache_capacity=*/4));
  expect_identical(reference, CatalogSolver(rows, CatalogOptions{}).solve());

  const CatalogSpec implicit = make_synthetic_catalog(
      synth, seed,
      std::make_shared<fap::net::HierarchicalCostProvider>(tiered.spec));
  expect_identical(reference,
                   CatalogSolver(implicit, CatalogOptions{}).solve());

  // Provider-backed solves stay jobs-invariant too (the row cache is
  // shared across workers; single-flight keeps the bytes deterministic).
  CatalogOptions parallel;
  parallel.jobs = 4;
  expect_identical(reference, CatalogSolver(rows, parallel).solve());
}

TEST(CatalogSpecTest, ProviderOverloadValidatesNodeCount) {
  SyntheticCatalogOptions synth;
  synth.objects = 8;
  synth.nodes = 6;
  const fap::net::Topology ring = fap::net::make_ring(5, 1.0);  // wrong size
  EXPECT_THROW(
      make_synthetic_catalog(synth, 3,
                             std::make_shared<fap::net::RowCostProvider>(ring)),
      PreconditionError);
}

TEST(CatalogSolver, ValidatesSpecAndOptions) {
  SyntheticCatalogOptions synth;
  synth.objects = 4;
  synth.nodes = 4;
  const CatalogSpec good = make_synthetic_catalog(synth, 1);
  EXPECT_NO_THROW(CatalogSolver(good, CatalogOptions{}));

  CatalogSpec bad = good;
  bad.home.back() = 9;  // out of range
  EXPECT_THROW(CatalogSolver(bad, CatalogOptions{}), PreconditionError);
  bad = good;
  bad.rate.pop_back();  // SoA size mismatch
  EXPECT_THROW(CatalogSolver(bad, CatalogOptions{}), PreconditionError);
  bad = good;
  bad.locality = 1.5;
  EXPECT_THROW(CatalogSolver(bad, CatalogOptions{}), PreconditionError);
  bad = good;
  for (double& cap : bad.node_capacity) {
    cap = 0.1;  // cannot hold the catalog
  }
  EXPECT_THROW(CatalogSolver(bad, CatalogOptions{}), PreconditionError);

  CatalogOptions options;
  options.batch_width = 0;
  EXPECT_THROW(CatalogSolver(good, options), PreconditionError);
  options = CatalogOptions{};
  options.repair_margin = 1.0;
  EXPECT_THROW(CatalogSolver(good, options), PreconditionError);
  options = CatalogOptions{};
  options.max_repair_passes = 0;
  EXPECT_THROW(CatalogSolver(good, options), PreconditionError);
}

}  // namespace
