// Golden-trace equivalence: the rewritten DES event engine (DesSystem —
// slab job pool, flat 4-ary event heap, ring-buffer FIFOs) must be
// bit-identical, per seed, to the pre-rewrite engine kept verbatim as
// DesReferenceSystem. Both engines are driven through identical scenario
// scripts and every observable — clock, completion counts, running-stat
// internals, histogram buckets, per-node counters, access logs — is
// compared with exact equality (EXPECT_EQ on doubles, deliberately: the
// contract is byte-identical traces, not tolerance agreement).
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "sim/des.hpp"
#include "sim/des_reference.hpp"
#include "sim/des_system.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fap::sim {
namespace {

void expect_stats_equal(const util::RunningStats& a,
                        const util::RunningStats& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  if (a.count() > 0 && b.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
}

void expect_windows_equal(const WindowStats& a, const WindowStats& b) {
  expect_stats_equal(a.comm_cost, b.comm_cost, "comm_cost");
  expect_stats_equal(a.sojourn, b.sojourn, "sojourn");
  expect_stats_equal(a.response_time, b.response_time, "response_time");
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.failed_accesses, b.failed_accesses);
  ASSERT_EQ(a.sojourn_histogram.bucket_count(),
            b.sojourn_histogram.bucket_count());
  EXPECT_EQ(a.sojourn_histogram.total(), b.sojourn_histogram.total());
  for (std::size_t i = 0; i < a.sojourn_histogram.bucket_count(); ++i) {
    EXPECT_EQ(a.sojourn_histogram.count(i), b.sojourn_histogram.count(i))
        << "histogram bucket " << i;
  }
  ASSERT_EQ(a.response_hist.bucket_count(), b.response_hist.bucket_count());
  EXPECT_EQ(a.response_hist.total(), b.response_hist.total());
  EXPECT_EQ(a.response_hist.nonfinite(), b.response_hist.nonfinite());
  for (std::size_t i = 0; i < a.response_hist.bucket_count(); ++i) {
    EXPECT_EQ(a.response_hist.count(i), b.response_hist.count(i))
        << "log histogram bucket " << i;
  }
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    expect_stats_equal(a.node[i].sojourn, b.node[i].sojourn, "node sojourn");
    EXPECT_EQ(a.node[i].arrivals, b.node[i].arrivals) << "node " << i;
    EXPECT_EQ(a.node[i].busy_time, b.node[i].busy_time) << "node " << i;
    EXPECT_EQ(a.node[i].observed_arrival_rate,
              b.node[i].observed_arrival_rate)
        << "node " << i;
    EXPECT_EQ(a.node[i].utilization, b.node[i].utilization) << "node " << i;
  }
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i].source, b.log[i].source) << "log " << i;
    EXPECT_EQ(a.log[i].target, b.log[i].target) << "log " << i;
    EXPECT_EQ(a.log[i].arrival_time, b.log[i].arrival_time) << "log " << i;
    EXPECT_EQ(a.log[i].service_start, b.log[i].service_start) << "log " << i;
    EXPECT_EQ(a.log[i].departure_time, b.log[i].departure_time)
        << "log " << i;
    EXPECT_EQ(a.log[i].comm_cost, b.log[i].comm_cost) << "log " << i;
  }
}

/// A moderately loaded n-node config with skewed routing and per-pair
/// costs; parameters perturbed per seed so different scenarios exercise
/// different event interleavings.
DesConfig make_config(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  DesConfig config;
  config.lambda.resize(n);
  config.mu.resize(n);
  config.routing.assign(n, std::vector<double>(n, 0.0));
  config.comm_cost.assign(n, std::vector<double>(n, 0.0));
  std::vector<double> row(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    row[i] = 0.2 + rng.uniform();
    sum += row[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    row[i] /= sum;
  }
  for (std::size_t j = 0; j < n; ++j) {
    config.lambda[j] = 0.5 + rng.uniform();
    config.routing[j] = row;
    for (std::size_t i = 0; i < n; ++i) {
      config.comm_cost[j][i] = j == i ? 0.0 : 1.0 + rng.uniform();
    }
  }
  // Load each node to roughly rho = 0.8 under the shared routing row.
  double total_lambda = 0.0;
  for (const double l : config.lambda) {
    total_lambda += l;
  }
  for (std::size_t i = 0; i < n; ++i) {
    config.mu[i] = total_lambda * row[i] / 0.8;
  }
  config.seed = seed;
  config.record_log = true;
  return config;
}

/// Drives both engines through the same script and compares after every
/// observation point.
template <typename Script>
void run_equivalence(const DesConfig& config, Script&& script) {
  DesSystem rewritten(config);
  DesReferenceSystem reference(config);
  script(rewritten, reference);
  EXPECT_EQ(rewritten.now(), reference.now());
  expect_windows_equal(rewritten.window(), reference.window());
}

TEST(DesEngineEquivalence, SteadyStateTraceMatches) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE(seed);
    run_equivalence(make_config(5, seed), [](auto& a, auto& b) {
      a.advance_until(100.0);
      b.advance_until(100.0);
      a.reset_window();
      b.reset_window();
      EXPECT_EQ(a.advance_completions(5000), b.advance_completions(5000));
      expect_windows_equal(a.window(), b.window());
      // Interleave time- and completion-driven advancement.
      a.advance_until(a.now() + 25.0);
      b.advance_until(b.now() + 25.0);
      EXPECT_EQ(a.advance_completions(777), b.advance_completions(777));
    });
  }
}

TEST(DesEngineEquivalence, MultiServerNodesMatch) {
  DesConfig config = make_config(4, 11);
  config.servers_per_node = {1, 2, 3, 4};
  for (double& mu : config.mu) {
    mu *= 0.45;  // keep rho comparable with the extra servers
  }
  run_equivalence(config, [](auto& a, auto& b) {
    a.advance_until(50.0);
    b.advance_until(50.0);
    a.reset_window();
    b.reset_window();
    EXPECT_EQ(a.advance_completions(4000), b.advance_completions(4000));
  });
}

TEST(DesEngineEquivalence, DeterministicAndGammaServiceMatch) {
  for (const ServiceDistribution service :
       {ServiceDistribution::kDeterministic, ServiceDistribution::kGamma}) {
    SCOPED_TRACE(static_cast<int>(service));
    DesConfig config = make_config(4, 3);
    config.service = service;
    config.service_scv = 2.5;
    run_equivalence(config, [](auto& a, auto& b) {
      a.advance_until(40.0);
      b.advance_until(40.0);
      a.reset_window();
      b.reset_window();
      EXPECT_EQ(a.advance_completions(3000), b.advance_completions(3000));
    });
  }
}

TEST(DesEngineEquivalence, StoreAndForwardTransitMatches) {
  DesConfig config = make_config(5, 17);
  config.hop_latency = 0.05;
  config.route_hops.assign(5, std::vector<std::size_t>(5, 0));
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 5; ++i) {
      config.route_hops[j][i] = j == i ? 0 : 1 + (j + i) % 3;
    }
  }
  run_equivalence(config, [](auto& a, auto& b) {
    a.advance_until(60.0);
    b.advance_until(60.0);
    a.reset_window();
    b.reset_window();
    EXPECT_EQ(a.advance_completions(3000), b.advance_completions(3000));
  });
}

TEST(DesEngineEquivalence, MidFlightRewiringMatches) {
  const DesConfig config = make_config(5, 5);
  // A second routing mix concentrating on the first two nodes.
  std::vector<std::vector<double>> rewired(
      5, {0.45, 0.45, 0.10, 0.0, 0.0});
  run_equivalence(config, [&rewired](auto& a, auto& b) {
    a.advance_until(30.0);
    b.advance_until(30.0);
    a.reset_window();
    b.reset_window();
    EXPECT_EQ(a.advance_completions(1500), b.advance_completions(1500));
    a.set_routing(rewired);
    b.set_routing(rewired);
    EXPECT_EQ(a.advance_completions(1500), b.advance_completions(1500));
    expect_windows_equal(a.window(), b.window());
    a.reset_window();
    b.reset_window();
    EXPECT_EQ(a.advance_completions(1000), b.advance_completions(1000));
  });
}

TEST(DesEngineEquivalence, FailureAndRepairTraceMatches) {
  for (const std::uint64_t seed : {2u, 13u}) {
    SCOPED_TRACE(seed);
    DesConfig config = make_config(5, seed);
    config.hop_latency = 0.02;  // in-flight arrivals hit failed nodes too
    run_equivalence(config, [](auto& a, auto& b) {
      a.advance_until(30.0);
      b.advance_until(30.0);
      a.reset_window();
      b.reset_window();
      EXPECT_EQ(a.advance_completions(1000), b.advance_completions(1000));
      // Kill two nodes mid-run (voiding their queued + in-service work),
      // keep running, then repair one and keep running again.
      a.set_node_failed(1, true);
      b.set_node_failed(1, true);
      a.set_node_failed(3, true);
      b.set_node_failed(3, true);
      expect_windows_equal(a.window(), b.window());
      EXPECT_EQ(a.advance_completions(1000), b.advance_completions(1000));
      a.set_node_failed(1, false);
      b.set_node_failed(1, false);
      EXPECT_EQ(a.advance_completions(1000), b.advance_completions(1000));
      expect_windows_equal(a.window(), b.window());
      a.set_node_failed(3, false);
      b.set_node_failed(3, false);
      EXPECT_EQ(a.advance_completions(500), b.advance_completions(500));
    });
  }
}

TEST(DesEngineEquivalence, RandomizedScenarioScriptsMatch) {
  // Randomized interleavings of every operation, driven by a script RNG
  // shared between both engines.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE(seed);
    DesConfig config = make_config(6, seed);
    config.hop_latency = seed % 2 == 0 ? 0.01 : 0.0;
    run_equivalence(config, [seed](auto& a, auto& b) {
      util::Rng script(seed * 977 + 1);
      std::vector<bool> down(6, false);
      a.advance_until(20.0);
      b.advance_until(20.0);
      a.reset_window();
      b.reset_window();
      for (int step = 0; step < 30; ++step) {
        const double pick = script.uniform();
        if (pick < 0.4) {
          const std::size_t count =
              100 + static_cast<std::size_t>(script.uniform() * 400.0);
          EXPECT_EQ(a.advance_completions(count),
                    b.advance_completions(count));
        } else if (pick < 0.7) {
          const double dt = script.uniform() * 5.0;
          a.advance_until(a.now() + dt);
          b.advance_until(b.now() + dt);
        } else if (pick < 0.85) {
          // Toggle a node, but never let every node go down.
          const std::size_t node =
              static_cast<std::size_t>(script.uniform() * 6.0) % 6;
          std::size_t up = 0;
          for (const bool d : down) {
            up += d ? 0 : 1;
          }
          if (down[node] || up > 2) {
            down[node] = !down[node];
            a.set_node_failed(node, down[node]);
            b.set_node_failed(node, down[node]);
          }
        } else if (pick < 0.95) {
          expect_windows_equal(a.window(), b.window());
        } else {
          a.reset_window();
          b.reset_window();
        }
      }
    });
  }
}

TEST(DesEngineEquivalence, RestartMatchesFreshConstruction) {
  // restart() must be bit-equivalent to constructing a new engine — this
  // is what lets run_des_replications recycle one engine per worker.
  const DesConfig first = make_config(5, 31);
  DesConfig second = make_config(3, 32);  // different shape on purpose
  second.servers_per_node = {2, 1, 2};
  second.hop_latency = 0.03;

  DesSystem recycled(first);
  recycled.advance_until(80.0);
  recycled.reset_window();
  recycled.advance_completions(2000);
  recycled.set_node_failed(2, true);  // leave mid-run state behind
  recycled.advance_completions(500);

  recycled.restart(second);
  DesSystem fresh(second);
  EXPECT_EQ(recycled.now(), fresh.now());
  recycled.advance_until(40.0);
  fresh.advance_until(40.0);
  recycled.reset_window();
  fresh.reset_window();
  EXPECT_EQ(recycled.advance_completions(3000),
            fresh.advance_completions(3000));
  expect_windows_equal(recycled.window(), fresh.window());

  // And restarting back to the first config replays the original run.
  recycled.restart(first);
  DesSystem baseline(first);
  recycled.advance_until(80.0);
  baseline.advance_until(80.0);
  recycled.reset_window();
  baseline.reset_window();
  EXPECT_EQ(recycled.advance_completions(2000),
            baseline.advance_completions(2000));
  expect_windows_equal(recycled.window(), baseline.window());
}

TEST(DesEngineEquivalence, RunDesEngineOverloadMatchesPlainRunDes) {
  DesConfig config = make_config(4, 41);
  config.warmup_time = 50.0;
  config.measured_accesses = 5000;
  const DesResult plain = run_des(config);

  DesSystem engine(make_config(5, 42));  // warm the engine on other work
  engine.advance_until(100.0);
  const DesResult reused = run_des(engine, config);

  expect_stats_equal(plain.comm_cost, reused.comm_cost, "comm_cost");
  expect_stats_equal(plain.sojourn, reused.sojourn, "sojourn");
  expect_stats_equal(plain.response_time, reused.response_time,
                     "response_time");
  EXPECT_EQ(plain.measured_cost, reused.measured_cost);
  EXPECT_EQ(plain.simulated_time, reused.simulated_time);
  ASSERT_EQ(plain.log.size(), reused.log.size());
}

TEST(DesEngineEquivalence, ReferenceHonorsConfiguredEventBudget) {
  // The budget knobs must gate the reference engine identically (both
  // engines share DesConfig); the dedicated budget tests live in
  // sim_des_system_test.cpp.
  DesConfig config = make_config(3, 51);
  config.event_budget_per_completion = 1;
  config.event_budget_floor = 10;
  DesReferenceSystem reference(config);
  for (std::size_t node = 0; node < 3; ++node) {
    reference.set_node_failed(node, true);
  }
  EXPECT_THROW(reference.advance_completions(100), util::InvariantError);
}

}  // namespace
}  // namespace fap::sim
