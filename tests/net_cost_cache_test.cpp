#include "net/cost_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/catalog_spec.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"

namespace {

using fap::net::all_pairs_shortest_paths;
using fap::net::CostMatrix;
using fap::net::CostMatrixCache;
using fap::net::Topology;
using fap::net::TopologyFingerprint;

TEST(TopologyFingerprint, PureFunctionOfConstructionSequence) {
  const Topology a = fap::net::make_ring(6, 2.0);
  const Topology b = fap::net::make_ring(6, 2.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Any content difference — node count, edge set, a single cost bit —
  // must move the fingerprint.
  EXPECT_NE(a.fingerprint(), fap::net::make_ring(7, 2.0).fingerprint());
  EXPECT_NE(a.fingerprint(), fap::net::make_ring(6, 2.5).fingerprint());
  EXPECT_NE(a.fingerprint(), fap::net::make_line(6, 2.0).fingerprint());
  EXPECT_NE(Topology(3).fingerprint(), Topology(4).fingerprint());
}

TEST(TopologyFingerprint, TracksIncrementalMutation) {
  Topology a(4);
  Topology b(4);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.add_edge(0, 1, 1.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.add_edge(0, 1, 1.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Edge endpoints and insertion order are part of the identity.
  Topology swapped(4);
  swapped.add_edge(1, 0, 1.0);
  EXPECT_NE(a.fingerprint(), swapped.fingerprint());
}

void expect_same_matrix(const CostMatrix& a, const CostMatrix& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    for (std::size_t j = 0; j < a.node_count(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j));
    }
  }
}

TEST(CostMatrixCache, MissComputesThenContentEqualTopologyHits) {
  CostMatrixCache cache;
  const Topology ring = fap::net::make_ring(6, 2.0);
  const auto first = cache.get(ring);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  expect_same_matrix(*first, all_pairs_shortest_paths(ring));

  // A DIFFERENT Topology object with identical content must hit and
  // return the same shared matrix.
  const Topology same_content = fap::net::make_ring(6, 2.0);
  const auto second = cache.get(same_content);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CostMatrixCache, DistinguishesContentDifferences) {
  CostMatrixCache cache;
  cache.get(fap::net::make_ring(6, 1.0));
  cache.get(fap::net::make_ring(6, 1.5));   // same shape, different cost
  cache.get(fap::net::make_ring(7, 1.0));   // different node count
  cache.get(fap::net::make_line(6, 1.0));   // different edges
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(CostMatrixCache, HandedOutMatrixSurvivesClear) {
  CostMatrixCache cache;
  const Topology star = fap::net::make_star(5, 1.0);
  std::shared_ptr<const CostMatrix> matrix = cache.get(star);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  expect_same_matrix(*matrix, all_pairs_shortest_paths(star));

  // After clear() the same topology misses again (fresh computation).
  const auto again = cache.get(star);
  EXPECT_EQ(cache.stats().misses, 1u);
  expect_same_matrix(*again, *matrix);
}

// Single-flight under contention: many threads asking for the same
// topology concurrently must agree on one shared matrix and produce
// exactly one miss. Run under TSan in CI to pin the synchronization.
TEST(CostMatrixCache, ConcurrentRequestsComputeOnceAndShare) {
  CostMatrixCache cache;
  const Topology grid = fap::net::make_grid(8, 8, 1.0);
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const CostMatrix>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&cache, &grid, &results, t]() { results[t] = cache.get(grid); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kThreads - 1);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].get(), results[t].get());
  }
}

// The catalog-shard shape of the same contention: concurrent
// make_synthetic_catalog calls sharing one cache, mixed over two seeds.
// Each shard verifies its matrix CONTENT in-thread against a serially
// precomputed reference — under TSan a torn publish of the shared matrix
// is a data race on those reads, not just a wrong value. Exactly one
// build per distinct topology.
TEST(CostMatrixCache, ConcurrentCatalogShardsShareOneBuildPerTopology) {
  fap::catalog::SyntheticCatalogOptions options;
  options.objects = 16;
  options.nodes = 24;
  const std::uint64_t seeds[] = {3, 9};
  std::vector<fap::catalog::CatalogSpec> reference;
  for (const std::uint64_t seed : seeds) {
    reference.push_back(fap::catalog::make_synthetic_catalog(options, seed));
  }

  CostMatrixCache cache;
  constexpr std::size_t kThreads = 12;
  std::vector<int> matches(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        const fap::catalog::CatalogSpec spec =
            fap::catalog::make_synthetic_catalog(options, seeds[t % 2],
                                                 cache);
        const CostMatrix& expected = reference[t % 2].comm;
        bool equal = spec.comm.node_count() == expected.node_count();
        for (std::size_t i = 0; equal && i < expected.node_count(); ++i) {
          for (std::size_t j = 0; j < expected.node_count(); ++j) {
            equal &= spec.comm(i, j) == expected(i, j);
          }
        }
        matches[t] = equal ? 1 : 0;
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(matches[t], 1) << "shard " << t;
  }
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, kThreads - 2);
  EXPECT_EQ(cache.size(), 2u);
}

// A failing computation must not poison the cache: the error propagates,
// and a subsequent feasible request succeeds.
TEST(CostMatrixCache, FailedComputationLeavesCacheUsable) {
  CostMatrixCache cache;
  Topology disconnected(4);
  disconnected.add_edge(0, 1, 1.0);  // nodes 2,3 unreachable -> APSP throws
  EXPECT_ANY_THROW(cache.get(disconnected));
  EXPECT_EQ(cache.size(), 0u);

  const Topology ring = fap::net::make_ring(4, 1.0);
  const auto matrix = cache.get(ring);
  expect_same_matrix(*matrix, all_pairs_shortest_paths(ring));
}

}  // namespace
