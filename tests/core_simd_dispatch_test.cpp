// Runtime SIMD dispatch policy: override > FAP_FORCE_SCALAR_KERNELS env
// > CPUID/compile-time. The env override is the CI lever that makes an
// AVX2 machine exercise the scalar kernels, so its exact semantics (set
// and not "" / "0" forces scalar) are pinned here.
#include "core/simd_dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/contracts.hpp"

namespace {

using fap::core::SimdLevel;

// setenv/unsetenv scope guard: restores the variable's previous state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

class ScopedOverrideClear {
 public:
  ~ScopedOverrideClear() { fap::core::clear_simd_override(); }
};

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(fap::core::simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(fap::core::simd_level_name(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatch, EnvVariableForcesScalar) {
  ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", "1");
  EXPECT_TRUE(fap::core::scalar_kernels_forced_by_env());
  EXPECT_EQ(fap::core::active_simd_level(), SimdLevel::kScalar);
}

TEST(SimdDispatch, EnvVariableAnyNonZeroValueForcesScalar) {
  ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", "yes");
  EXPECT_TRUE(fap::core::scalar_kernels_forced_by_env());
  EXPECT_EQ(fap::core::active_simd_level(), SimdLevel::kScalar);
}

TEST(SimdDispatch, EnvVariableZeroOrEmptyDoesNotForce) {
  {
    ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", "0");
    EXPECT_FALSE(fap::core::scalar_kernels_forced_by_env());
  }
  {
    ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", "");
    EXPECT_FALSE(fap::core::scalar_kernels_forced_by_env());
  }
  {
    ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", nullptr);
    EXPECT_FALSE(fap::core::scalar_kernels_forced_by_env());
  }
}

TEST(SimdDispatch, DefaultLevelMatchesHardware) {
  ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", nullptr);
  const bool avx2_ok =
      fap::core::avx2_kernels_compiled() && fap::core::cpu_supports_avx2();
  EXPECT_EQ(fap::core::active_simd_level(),
            avx2_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar);
}

TEST(SimdDispatch, ProgrammaticOverrideBeatsEnv) {
  ScopedEnv env("FAP_FORCE_SCALAR_KERNELS", nullptr);
  ScopedOverrideClear restore;
  fap::core::force_simd_level(SimdLevel::kScalar);
  EXPECT_EQ(fap::core::active_simd_level(), SimdLevel::kScalar);
  if (fap::core::avx2_kernels_compiled() && fap::core::cpu_supports_avx2()) {
    // The programmatic pin outranks the env lever in BOTH directions —
    // tests that force AVX2 must win over an inherited CI environment.
    ScopedEnv force_env("FAP_FORCE_SCALAR_KERNELS", "1");
    fap::core::force_simd_level(SimdLevel::kAvx2);
    EXPECT_EQ(fap::core::active_simd_level(), SimdLevel::kAvx2);
  }
  fap::core::clear_simd_override();
  ScopedEnv env2("FAP_FORCE_SCALAR_KERNELS", "1");
  EXPECT_EQ(fap::core::active_simd_level(), SimdLevel::kScalar);
}

TEST(SimdDispatch, ForcingUnavailableAvx2Throws) {
  if (fap::core::avx2_kernels_compiled() && fap::core::cpu_supports_avx2()) {
    GTEST_SKIP() << "AVX2 available here; the refusal path is unreachable";
  }
  ScopedOverrideClear restore;
  EXPECT_THROW(fap::core::force_simd_level(SimdLevel::kAvx2),
               fap::util::PreconditionError);
}

}  // namespace
