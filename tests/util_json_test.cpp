#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "core/trace_export.hpp"
#include "util/contracts.hpp"

namespace {

using fap::util::json_escape;
using fap::util::JsonWriter;

TEST(JsonEscape, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01")), "\\u0001");
}

TEST(JsonWriter, SimpleObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("fap");
  json.key("answer").value(42LL);
  json.key("pi").value(3.5);
  json.key("ok").value(true);
  json.key("nothing").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"fap","answer":42,"pi":3.5,"ok":true,"nothing":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("series").begin_array();
  json.value(1.0).value(2.0);
  json.begin_object();
  json.key("inner").value("x");
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"series":[1,2,{"inner":"x"}]})");
}

TEST(JsonWriter, DoubleVectorHelper) {
  JsonWriter json;
  json.begin_object();
  json.key("x").value(std::vector<double>{0.25, 0.75});
  json.end_object();
  EXPECT_EQ(json.str(), R"({"x":[0.25,0.75]})");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::nan(""));
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, RoundTripPrecision) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.end_array();
  // %.17g round-trips doubles exactly.
  EXPECT_NE(json.str().find("0.1"), std::string::npos);
}

TEST(JsonWriter, RejectsStructuralMisuse) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), fap::util::PreconditionError);  // unclosed
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("k"), fap::util::PreconditionError);  // no object
  }
  {
    JsonWriter json;
    json.begin_object();
    json.key("k");
    EXPECT_THROW(json.key("again"), fap::util::PreconditionError);
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), fap::util::PreconditionError);
  }
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerIteration) {
  const fap::core::SingleFileModel model(
      fap::core::make_paper_ring_problem());
  fap::core::AllocatorOptions options;
  options.alpha = 0.3;
  options.record_trace = true;
  const fap::core::ResourceDirectedAllocator allocator(model, options);
  const fap::core::AllocationResult result =
      allocator.run({0.8, 0.1, 0.1, 0.0});
  const std::string csv = fap::core::trace_to_csv(result.trace);
  EXPECT_NE(csv.find("iteration,cost,alpha,active_set,spread,x0,x1,x2,x3"),
            std::string::npos);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, result.trace.size() + 1);
}

TEST(TraceExport, JsonDocumentIsWellFormedish) {
  const fap::core::SingleFileModel model(
      fap::core::make_paper_ring_problem());
  fap::core::AllocatorOptions options;
  options.alpha = 0.3;
  options.record_trace = true;
  const fap::core::ResourceDirectedAllocator allocator(model, options);
  const fap::core::AllocationResult result =
      allocator.run({0.8, 0.1, 0.1, 0.0});
  const std::string json = fap::core::result_to_json(result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":["), std::string::npos);
  // Balanced braces/brackets (no strings contain them here).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, EmptyTraceCsvIsJustTheHeader) {
  EXPECT_EQ(fap::core::trace_to_csv({}),
            "iteration,cost,alpha,active_set,spread\n");
}

}  // namespace
