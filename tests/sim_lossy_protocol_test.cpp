// run_protocol over the fault-injected network: a fault-free unreliable
// run is bitwise the ideal trajectory, faulty runs converge to the
// lossless optimum (the ISSUE 5 acceptance scenario), crash/rejoin
// degrades gracefully, and everything replays bit-for-bit from the seed.
#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "sim/protocol_sim.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

const std::vector<double> kStart{0.8, 0.1, 0.1, 0.0};

sim::ProtocolConfig base_config(sim::AggregationScheme scheme) {
  sim::ProtocolConfig config;
  config.scheme = scheme;
  config.algorithm.alpha = 0.3;
  config.algorithm.epsilon = 1e-5;
  config.algorithm.max_iterations = 5000;
  return config;
}

sim::ProtocolConfig faulty_config(sim::AggregationScheme scheme,
                                  double loss, std::uint64_t seed) {
  sim::ProtocolConfig config = base_config(scheme);
  config.unreliable.enabled = true;
  config.unreliable.faults.loss = loss;
  config.unreliable.faults.seed = seed;
  config.unreliable.round_ticks = 16;
  config.unreliable.correction_interval = 4;
  return config;
}

TEST(LossyProtocol, FaultFreeUnreliablePathIsBitwiseTheIdealTrajectory) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    const sim::ProtocolResult ideal =
        sim::run_protocol(model, kStart, base_config(scheme));

    sim::ProtocolConfig unreliable = base_config(scheme);
    unreliable.unreliable.enabled = true;  // zero faults configured
    unreliable.unreliable.round_ticks = 4;
    const sim::ProtocolResult faulty =
        sim::run_protocol(model, kStart, unreliable);

    ASSERT_TRUE(ideal.converged);
    ASSERT_TRUE(faulty.converged);
    EXPECT_EQ(faulty.rounds, ideal.rounds);
    ASSERT_EQ(faulty.x.size(), ideal.x.size());
    for (std::size_t i = 0; i < ideal.x.size(); ++i) {
      EXPECT_EQ(faulty.x[i], ideal.x[i]) << "component " << i;
    }
    EXPECT_EQ(faulty.robustness.retransmissions, 0u);
    EXPECT_EQ(faulty.robustness.messages_dropped, 0u);
    EXPECT_EQ(faulty.robustness.rounds_with_missing_reports, 0u);
    // Fresh views every round: only rounding residue in the sum.
    EXPECT_LT(faulty.robustness.max_feasibility_drift, 1e-12);
  }
}

TEST(LossyProtocol, TwentyPercentLossConvergesToTheLosslessCost) {
  // ISSUE 5 acceptance: loss <= 20% with retransmission on the Figure-3
  // ring lands within 1e-6 of the lossless final cost.
  const core::SingleFileModel model(core::make_paper_ring_problem());
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    const sim::ProtocolResult lossless =
        sim::run_protocol(model, kStart, base_config(scheme));
    const sim::ProtocolResult lossy = sim::run_protocol(
        model, kStart, faulty_config(scheme, /*loss=*/0.2, /*seed=*/11));
    ASSERT_TRUE(lossless.converged);
    ASSERT_TRUE(lossy.converged);
    EXPECT_NEAR(lossy.cost, lossless.cost, 1e-6);
    // The faults were real: the transport had to work for this.
    EXPECT_GT(lossy.robustness.retransmissions, 0u);
    EXPECT_GT(lossy.robustness.messages_dropped, 0u);
    EXPECT_LT(lossy.robustness.final_feasibility_drift, 1e-3);
  }
}

TEST(LossyProtocol, ReplaysBitForBitFromTheSeed) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const sim::ProtocolConfig config =
      faulty_config(sim::AggregationScheme::kBroadcast, 0.25, 42);
  const sim::ProtocolResult a = sim::run_protocol(model, kStart, config);
  const sim::ProtocolResult b = sim::run_protocol(model, kStart, config);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.point_to_point_messages, b.point_to_point_messages);
  EXPECT_EQ(a.robustness.retransmissions, b.robustness.retransmissions);
  EXPECT_EQ(a.robustness.messages_dropped, b.robustness.messages_dropped);
  EXPECT_EQ(a.robustness.duplicates_suppressed,
            b.robustness.duplicates_suppressed);
  EXPECT_EQ(a.robustness.max_feasibility_drift,
            b.robustness.max_feasibility_drift);

  sim::ProtocolConfig other = config;
  other.unreliable.faults.seed = 43;
  const sim::ProtocolResult c = sim::run_protocol(model, kStart, other);
  EXPECT_NE(a.point_to_point_messages, c.point_to_point_messages);
}

TEST(LossyProtocol, DuplicationAndJitterAreAbsorbedByTheTransport) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config =
      faulty_config(sim::AggregationScheme::kBroadcast, 0.1, 7);
  config.unreliable.faults.duplicate = 0.3;
  config.unreliable.faults.jitter_ticks = 3;
  const sim::ProtocolResult result =
      sim::run_protocol(model, kStart, config);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.robustness.duplicates_suppressed, 0u);
  const sim::ProtocolResult lossless = sim::run_protocol(
      model, kStart, base_config(sim::AggregationScheme::kBroadcast));
  EXPECT_NEAR(result.cost, lossless.cost, 1e-6);
}

TEST(LossyProtocol, CrashAndRejoinDegradesGracefullyAndRecovers) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config =
      faulty_config(sim::AggregationScheme::kBroadcast, 0.05, 3);
  config.unreliable.round_ticks = 8;
  // Node 2 is down for rounds ~2..10 (ticks 16..80), then rejoins.
  config.unreliable.faults.crashes = {{2, 16, 80}};
  const sim::ProtocolResult result =
      sim::run_protocol(model, kStart, config);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.robustness.rounds_with_missing_reports, 0u);
  EXPECT_GT(result.robustness.messages_dropped, 0u);
  const sim::ProtocolResult lossless = sim::run_protocol(
      model, kStart, base_config(sim::AggregationScheme::kBroadcast));
  // The outage stalls progress but the optimum is still reached.
  EXPECT_NEAR(result.cost, lossless.cost, 1e-6);
  EXPECT_GE(result.rounds, lossless.rounds);
}

TEST(LossyProtocol, CentralAgentCrashStallsRoundsUntilRejoin) {
  // With the star's hub down nothing aggregates: those rounds all count
  // as missing-report rounds, and convergence still happens afterwards.
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config =
      faulty_config(sim::AggregationScheme::kCentralAgent, 0.0, 19);
  config.unreliable.round_ticks = 8;
  config.unreliable.faults.crashes = {{0, 8, 48}};  // hub down rounds 1..5
  const sim::ProtocolResult result =
      sim::run_protocol(model, kStart, config);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.robustness.rounds_with_missing_reports, 5u);
  const sim::ProtocolResult lossless = sim::run_protocol(
      model, kStart, base_config(sim::AggregationScheme::kCentralAgent));
  EXPECT_NEAR(result.cost, lossless.cost, 1e-6);
  EXPECT_GT(result.rounds, lossless.rounds);
}

TEST(LossyProtocol, AntiEntropyBoundsDriftUnderHeavyLoss) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig no_correction =
      faulty_config(sim::AggregationScheme::kBroadcast, 0.45, 23);
  no_correction.unreliable.correction_interval = 0;
  no_correction.unreliable.round_ticks = 4;  // tight deadline: stale views
  no_correction.unreliable.max_view_drift = 1e9;  // measure, don't guard
  no_correction.algorithm.max_iterations = 300;
  no_correction.algorithm.epsilon = 1e-7;  // don't stop early; measure drift
  const sim::ProtocolResult raw =
      sim::run_protocol(model, kStart, no_correction);

  sim::ProtocolConfig corrected = no_correction;
  corrected.unreliable.correction_interval = 4;
  const sim::ProtocolResult fixed =
      sim::run_protocol(model, kStart, corrected);

  EXPECT_GT(raw.robustness.max_feasibility_drift, 0.0);
  EXPECT_LE(fixed.robustness.final_feasibility_drift,
            raw.robustness.max_feasibility_drift + 1e-12);
}

TEST(LossyProtocol, RequiresSingleGroupModelsAndSaneRounds) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config =
      faulty_config(sim::AggregationScheme::kBroadcast, 0.1, 1);
  config.unreliable.round_ticks = 0;
  EXPECT_THROW(sim::run_protocol(model, kStart, config),
               fap::util::PreconditionError);
  config.unreliable.round_ticks = 2;
  config.unreliable.faults.min_delay_ticks = 5;  // cannot fit in a round
  EXPECT_THROW(sim::run_protocol(model, kStart, config),
               fap::util::PreconditionError);
}

}  // namespace
