#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using fap::util::Histogram;
using fap::util::RunningStats;
using fap::util::TimeWeightedStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : data) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance of this classic set is 4; sample variance = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  fap::util::Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  fap::util::Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    if (i < 100) {
      small.add(x);
    }
    large.add(x);
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats stats;
  stats.record(0.0, 2.0);   // value 2 over [0, 1)
  stats.record(1.0, 4.0);   // value 4 over [1, 3)
  stats.record(3.0, 0.0);   // value 0 over [3, 5]
  EXPECT_NEAR(stats.average(5.0), (2.0 * 1 + 4.0 * 2 + 0.0 * 2) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.last_value(), 0.0);
}

TEST(TimeWeightedStats, ExtendsLastValueToQueryTime) {
  TimeWeightedStats stats;
  stats.record(0.0, 1.0);
  EXPECT_NEAR(stats.average(10.0), 1.0, 1e-12);
}

TEST(TimeWeightedStats, EmptyAverageIsZero) {
  TimeWeightedStats stats;
  EXPECT_EQ(stats.average(10.0), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);    // bucket 0
  hist.add(9.99);   // bucket 9
  hist.add(-5.0);   // clamped to bucket 0
  hist.add(100.0);  // clamped to bucket 9
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(9), 2u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(3), 3.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram hist(0.0, 1.0, 100);
  fap::util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    hist.add(rng.uniform());
  }
  EXPECT_NEAR(hist.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(hist.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(hist.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), fap::util::PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), fap::util::PreconditionError);
  Histogram hist(0.0, 1.0, 4);
  EXPECT_THROW(hist.count(4), fap::util::PreconditionError);
  EXPECT_THROW(hist.quantile(1.5), fap::util::PreconditionError);
}

}  // namespace
