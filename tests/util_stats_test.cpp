#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using fap::util::Histogram;
using fap::util::LogHistogram;
using fap::util::RunningStats;
using fap::util::TimeWeightedStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> data{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : data) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance of this classic set is 4; sample variance = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  fap::util::Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  fap::util::Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    if (i < 100) {
      small.add(x);
    }
    large.add(x);
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(TimeWeightedStats, PiecewiseConstantAverage) {
  TimeWeightedStats stats;
  stats.record(0.0, 2.0);   // value 2 over [0, 1)
  stats.record(1.0, 4.0);   // value 4 over [1, 3)
  stats.record(3.0, 0.0);   // value 0 over [3, 5]
  EXPECT_NEAR(stats.average(5.0), (2.0 * 1 + 4.0 * 2 + 0.0 * 2) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.last_value(), 0.0);
}

TEST(TimeWeightedStats, ExtendsLastValueToQueryTime) {
  TimeWeightedStats stats;
  stats.record(0.0, 1.0);
  EXPECT_NEAR(stats.average(10.0), 1.0, 1e-12);
}

TEST(TimeWeightedStats, EmptyAverageIsZero) {
  TimeWeightedStats stats;
  EXPECT_EQ(stats.average(10.0), 0.0);
}

// Regression: an out-of-order record used to rewind last_time_, so the
// next in-order record re-accumulated the overlapped span. The sequence
// below then reported average(4) = (2·2 + 7·3) / 4 = 6.25 instead of the
// correct 4.5 — the rewind stretched the value-7 span back over [1, 2],
// which the value-5 record had already paid for.
TEST(TimeWeightedStats, OutOfOrderRecordDoesNotDoubleCount) {
  TimeWeightedStats stats;
  stats.record(0.0, 2.0);  // value 2 over [0, 2)
  stats.record(2.0, 5.0);  // value 5 over [2, ...)
  stats.record(1.0, 7.0);  // out of order: clamped to t = 2, value -> 7
  stats.record(4.0, 0.0);  // value 7 over [2, 4)
  EXPECT_NEAR(stats.average(4.0), (2.0 * 2 + 7.0 * 2) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.last_value(), 0.0);
}

TEST(TimeWeightedStats, OutOfOrderFirstRecordStillAnchorsStart) {
  TimeWeightedStats stats;
  stats.record(5.0, 1.0);
  stats.record(3.0, 3.0);  // clamped to t = 5; value becomes 3
  EXPECT_NEAR(stats.average(7.0), 3.0, 1e-12);
}

TEST(Histogram, CountsAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);    // bucket 0
  hist.add(9.99);   // bucket 9
  hist.add(-5.0);   // clamped to bucket 0
  hist.add(100.0);  // clamped to bucket 9
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(9), 2u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(3), 3.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram hist(0.0, 1.0, 100);
  fap::util::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    hist.add(rng.uniform());
  }
  EXPECT_NEAR(hist.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(hist.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(hist.quantile(0.99), 0.99, 0.02);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), fap::util::PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), fap::util::PreconditionError);
  Histogram hist(0.0, 1.0, 4);
  EXPECT_THROW(hist.count(4), fap::util::PreconditionError);
  EXPECT_THROW(hist.quantile(1.5), fap::util::PreconditionError);
}

// Regression: `next >= target` admitted empty buckets when the target
// sat exactly on their (unchanged) cumulative boundary — q = 0 is the
// always-reproducible case: target = 0 matched the empty bucket 0 and
// quantile(0) reported 0.0 for a distribution whose entire mass sits in
// bucket 9. The fix skips empty buckets, so every quantile lands where
// mass actually is.
TEST(Histogram, QuantileSkipsEmptyBucketAtExactBoundary) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(9.5);
  hist.add(9.5);
  hist.add(9.5);
  hist.add(9.5);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 9.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 9.5);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileInterpolatesAcrossEmptyGap) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);
  hist.add(0.5);
  hist.add(9.5);
  hist.add(9.5);
  // Median: target = 2 = cumulative mass of bucket 0, so it interpolates
  // to the right edge of the occupied bucket 0.
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 1.0);
  // Past the boundary the estimate jumps the empty gap into bucket 9:
  // target = 2.4, within = (2.4 - 2) / 2 = 0.2 of bucket 9.
  EXPECT_DOUBLE_EQ(hist.quantile(0.6), 9.0 + 0.2 * 1.0);
}

TEST(Histogram, QuantileNeverExceedsUpperEdge) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(100.0);  // clamped into the last bucket
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
}

// Regression: NaN used to fall through both range comparisons into
// bucket 0, silently dragging every low quantile toward lo.
TEST(Histogram, NonFiniteSamplesAreCountedAside) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(std::nan(""));
  hist.add(std::numeric_limits<double>::infinity());
  hist.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_EQ(hist.count(0), 0u);
  EXPECT_EQ(hist.nonfinite(), 3u);
  hist.add(5.0);
  EXPECT_EQ(hist.total(), 1u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 5.0);
  hist.clear();
  EXPECT_EQ(hist.nonfinite(), 0u);
}

TEST(LogHistogram, BucketEdgesAreGeometric) {
  LogHistogram hist(1.0, 1000.0, 3);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(0), 1.0);
  EXPECT_NEAR(hist.bucket_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(hist.bucket_lo(2), 100.0, 1e-9);
}

TEST(LogHistogram, CountsAndClamping) {
  LogHistogram hist(1e-3, 1e3, 384);
  hist.add(0.5);
  hist.add(1e-9);   // below lo: bucket 0
  hist.add(-4.0);   // below lo: bucket 0
  hist.add(1e9);    // above hi: last bucket
  hist.add(std::nan(""));
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.nonfinite(), 1u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(hist.bucket_count() - 1), 1u);
}

TEST(LogHistogram, QuantilesOfExponentialData) {
  // Exp(1): p50 = ln 2 ≈ 0.693, p99 = ln 100 ≈ 4.605, p999 ≈ 6.908. A
  // log histogram over [1e-4, 1e3] resolves all three to a few percent —
  // the point of the exercise: a linear histogram wide enough for the
  // tail would put the entire body into its first bucket.
  LogHistogram hist(1e-4, 1e3, 384);
  fap::util::Rng rng(11);
  for (int i = 0; i < 2000000; ++i) {
    hist.add(rng.exponential(1.0));
  }
  EXPECT_NEAR(hist.quantile(0.5), std::log(2.0), 0.05);
  EXPECT_NEAR(hist.quantile(0.99), std::log(100.0), 0.2);
  EXPECT_NEAR(hist.quantile(0.999), std::log(1000.0), 0.4);
}

TEST(LogHistogram, MergeEqualsSequential) {
  LogHistogram whole(1e-3, 1e3, 128);
  LogHistogram left(1e-3, 1e3, 128);
  LogHistogram right(1e-3, 1e3, 128);
  fap::util::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.exponential(0.5);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.total(), whole.total());
  for (std::size_t b = 0; b < whole.bucket_count(); ++b) {
    EXPECT_EQ(left.count(b), whole.count(b));
  }
  EXPECT_DOUBLE_EQ(left.quantile(0.999), whole.quantile(0.999));
}

TEST(LogHistogram, RejectsBadConstructionAndMismatchedMerge) {
  EXPECT_THROW(LogHistogram(0.0, 1.0, 4), fap::util::PreconditionError);
  EXPECT_THROW(LogHistogram(2.0, 1.0, 4), fap::util::PreconditionError);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 0), fap::util::PreconditionError);
  LogHistogram a(1.0, 10.0, 4);
  LogHistogram b(1.0, 10.0, 8);
  EXPECT_THROW(a.merge(b), fap::util::PreconditionError);
  EXPECT_EQ(a.quantile(0.5), 1.0);  // empty histogram reports lo
}

}  // namespace
