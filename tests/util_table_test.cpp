#include "util/table.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/contracts.hpp"

namespace {

using fap::util::ascii_chart;
using fap::util::Table;

TEST(Table, RendersAlignedColumns) {
  Table table({"alpha", "iterations"}, 2);
  table.add_row({0.3, 10LL});
  table.add_row({0.08, 51LL});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.30"), std::string::npos);
  EXPECT_NE(out.find("51"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "value"});
  table.add_row({std::string("a,b"), 1LL});
  table.add_row({std::string("quote\"inside"), 2LL});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table({"one", "two"});
  EXPECT_THROW(table.add_row({1LL}), fap::util::PreconditionError);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), fap::util::PreconditionError);
}

TEST(AsciiChart, ContainsAxisAndStars) {
  const std::vector<double> series{5.0, 4.0, 3.0, 2.0, 1.0};
  const std::string chart = ascii_chart(series, 40, 8, "cost");
  EXPECT_NE(chart.find("cost"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("iteration"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptyAndConstantSeries) {
  EXPECT_NE(ascii_chart({}, 10, 5, "y").find("empty"), std::string::npos);
  // A constant series must not divide by zero.
  const std::string chart = ascii_chart({2.0, 2.0, 2.0}, 10, 4, "y");
  EXPECT_NE(chart.find('*'), std::string::npos);
}

}  // namespace
