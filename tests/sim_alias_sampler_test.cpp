// The Walker/Vose alias sampler must reproduce each routing row's
// distribution exactly (table mass accounting) and statistically
// (chi-squared over a long sample stream) — it replaced the CDF sampler
// on the DES hot path, and a biased table would silently skew every
// simulated utilization and sojourn time.
#include "sim/alias_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

using fap::sim::AliasSampler;
using fap::util::PreconditionError;

// Probability mass the table assigns to outcome i:
//   (accept_[i] + Σ_{j : alias_[j] == i} (1 - accept_[j])) / n.
std::vector<double> table_masses(const AliasSampler& sampler) {
  const std::size_t n = sampler.size();
  std::vector<double> mass(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    mass[i] += sampler.acceptance()[i];
    mass[sampler.alias()[i]] += 1.0 - sampler.acceptance()[i];
  }
  for (double& m : mass) {
    m /= static_cast<double>(n);
  }
  return mass;
}

// Upper chi-squared critical value at p ≈ 0.999 via the Wilson–Hilferty
// cube approximation (z = 3.09). Generous on purpose: one fixed seed, so
// the test either passes forever or flags a real bias.
double chi2_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double term = 1.0 - 2.0 / (9.0 * d) + 3.09 * std::sqrt(2.0 / (9.0 * d));
  return d * term * term * term;
}

std::vector<double> normalized(std::vector<double> weights) {
  double sum = 0.0;
  for (const double w : weights) {
    sum += w;
  }
  for (double& w : weights) {
    w /= sum;
  }
  return weights;
}

TEST(AliasSampler, TableMassesMatchWeightsExactly) {
  const std::vector<std::vector<double>> rows = {
      {1.0},
      {0.5, 0.5},
      {1.0, 0.0, 0.0, 0.0},
      {0.25, 0.25, 0.25, 0.25},
      {0.7, 0.1, 0.1, 0.1},
      normalized({0.05, 1.9, 0.3, 0.7, 0.05, 3.0}),
  };
  for (const std::vector<double>& row : rows) {
    const AliasSampler sampler(row);
    const std::vector<double> mass = table_masses(sampler);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_NEAR(mass[i], row[i], 1e-12) << "outcome " << i;
    }
  }
}

TEST(AliasSampler, NeverEmitsZeroWeightOutcomes) {
  const AliasSampler sampler({0.5, 0.0, 0.5, 0.0});
  fap::util::Rng rng(17);
  for (int draw = 0; draw < 20000; ++draw) {
    const std::size_t target = sampler.sample(rng.uniform());
    EXPECT_TRUE(target == 0 || target == 2) << "draw " << draw;
  }
}

// Chi-squared goodness of fit per routing row: the empirical counts over
// a long one-uniform-per-sample stream must match the row.
TEST(AliasSampler, ChiSquaredMatchesEachRoutingRow) {
  // Rows shaped like the experiments' routing matrices: near-uniform
  // (converged allocation), concentrated (early iterations), skewed with
  // zero entries (boundary allocations), and a large heterogeneous row.
  std::vector<std::vector<double>> rows = {
      {0.25, 0.25, 0.25, 0.25},
      {0.8, 0.1, 0.1, 0.0},
      {0.05, 0.9, 0.05},
      normalized({2.0, 1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625}),
  };
  {
    // 32-outcome row with random weights (fixed seed).
    fap::util::Rng rng(23);
    std::vector<double> big(32);
    for (double& w : big) {
      w = rng.uniform(0.1, 2.0);
    }
    rows.push_back(normalized(big));
  }

  fap::util::Rng rng(101);
  constexpr std::size_t kSamples = 200000;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double>& row = rows[r];
    const AliasSampler sampler(row);
    std::vector<std::size_t> counts(row.size(), 0);
    for (std::size_t s = 0; s < kSamples; ++s) {
      ++counts[sampler.sample(rng.uniform())];
    }
    double chi2 = 0.0;
    std::size_t df = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const double expected = row[i] * static_cast<double>(kSamples);
      if (expected == 0.0) {
        EXPECT_EQ(counts[i], 0u) << "row " << r << " outcome " << i;
        continue;
      }
      const double dev = static_cast<double>(counts[i]) - expected;
      chi2 += dev * dev / expected;
      ++df;
    }
    ASSERT_GT(df, 1u);
    EXPECT_LT(chi2, chi2_critical(df - 1)) << "row " << r;
  }
}

TEST(AliasSampler, ValidatesLikeTheRoutingRows) {
  EXPECT_THROW(AliasSampler({}), PreconditionError);
  EXPECT_THROW(AliasSampler({0.5, 0.4}), PreconditionError);   // sums to 0.9
  EXPECT_THROW(AliasSampler({0.5, -0.5, 1.0}), PreconditionError);
  // Tiny negative dust is clamped, matching the CDF sampler it replaced.
  EXPECT_NO_THROW(AliasSampler({1.0, -1e-13}));
}

}  // namespace
