// Store-and-forward transport tests: per-hop latency, hop-count routing,
// and end-to-end response-time accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "sim/des.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;
namespace sim = fap::sim;

TEST(RouteHopCounts, RingHops) {
  const net::Topology ring = net::make_ring(6, 1.0);
  const auto hops = net::route_hop_counts(ring);
  EXPECT_EQ(hops[0][0], 0u);
  EXPECT_EQ(hops[0][1], 1u);
  EXPECT_EQ(hops[0][3], 3u);  // opposite side
  EXPECT_EQ(hops[0][5], 1u);  // wraps the short way
}

TEST(RouteHopCounts, FollowsLeastCostNotFewestHops) {
  // Direct link 0-1 costs 10; detour 0-2-1 costs 3 => route has 2 hops.
  net::Topology topology(3);
  topology.add_edge(0, 1, 10.0);
  topology.add_edge(0, 2, 1.0);
  topology.add_edge(2, 1, 2.0);
  const auto hops = net::route_hop_counts(topology);
  EXPECT_EQ(hops[0][1], 2u);
  EXPECT_EQ(hops[0][2], 1u);
}

TEST(RouteHopCounts, PrefersFewerHopsAmongEqualCostRoutes) {
  // Two equal-cost routes 0->2: direct (cost 2, 1 hop) and via 1
  // (1+1 = 2, 2 hops). The fewest-hop route must win.
  net::Topology topology(3);
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(1, 2, 1.0);
  topology.add_edge(0, 2, 2.0);
  const auto hops = net::route_hop_counts(topology);
  EXPECT_EQ(hops[0][2], 1u);
}

sim::DesConfig ring_config(double hop_latency) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::DesConfig config =
      sim::des_config_for(model, {0.25, 0.25, 0.25, 0.25});
  config.hop_latency = hop_latency;
  config.route_hops = net::route_hop_counts(net::make_ring(4, 1.0));
  config.measured_accesses = 80000;
  config.seed = 9090;
  return config;
}

TEST(StoreForward, ZeroLatencyReducesToInstantTransport) {
  const sim::DesResult result = sim::run_des(ring_config(0.0));
  EXPECT_EQ(result.response_time.count(), result.sojourn.count());
  EXPECT_NEAR(result.response_time.mean(), result.sojourn.mean(), 1e-12);
}

TEST(StoreForward, ResponseTimeAddsRoundTripTransit) {
  const double latency = 0.25;
  const sim::DesResult result = sim::run_des(ring_config(latency));
  // Expected round-trip transit: 2 * latency * E[hops]. On the 4-ring
  // with uniform routing, E[hops] = (0 + 1 + 2 + 1)/4 = 1.
  const double expected_transit = 2.0 * latency * 1.0;
  EXPECT_NEAR(result.response_time.mean(),
              result.sojourn.mean() + expected_transit,
              0.02 * result.response_time.mean());
  // Sojourn itself is unaffected by transport (queues see the same load).
  const sim::DesResult instant = sim::run_des(ring_config(0.0));
  EXPECT_NEAR(result.sojourn.mean(), instant.sojourn.mean(),
              0.05 * instant.sojourn.mean());
}

TEST(StoreForward, LocalAccessesPayNoTransit) {
  // Everything stored at the generating node's choice: route everything
  // to node 0 and generate only at node 0 => all accesses local.
  sim::DesConfig config;
  config.lambda = {0.5, 0.0, 0.0, 0.0};
  config.mu = {1.5, 1.5, 1.5, 1.5};
  config.routing.assign(4, std::vector<double>{1.0, 0.0, 0.0, 0.0});
  config.comm_cost.assign(4, std::vector<double>(4, 0.0));
  config.hop_latency = 5.0;
  config.measured_accesses = 20000;
  const sim::DesResult result = sim::run_des(config);
  EXPECT_NEAR(result.response_time.mean(), result.sojourn.mean(), 1e-12);
}

TEST(StoreForward, DefaultsToOneHopWithoutAMatrix) {
  sim::DesConfig config = ring_config(0.5);
  config.route_hops.clear();  // every remote access = 1 hop each way
  const sim::DesResult result = sim::run_des(config);
  // 75% of accesses are remote: expected transit = 2 * 0.5 * 0.75.
  EXPECT_NEAR(result.response_time.mean(), result.sojourn.mean() + 0.75,
              0.03 * result.response_time.mean());
}

TEST(StoreForward, RejectsBadConfig) {
  sim::DesConfig config = ring_config(0.1);
  config.hop_latency = -1.0;
  EXPECT_THROW(sim::run_des(config), fap::util::PreconditionError);
  config = ring_config(0.1);
  config.route_hops.pop_back();
  EXPECT_THROW(sim::run_des(config), fap::util::PreconditionError);
}

}  // namespace
