#include "util/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace {

namespace util = fap::util;

TEST(AlmostEqual, Basics) {
  EXPECT_TRUE(util::almost_equal(1.0, 1.0));
  EXPECT_TRUE(util::almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(util::almost_equal(1.0, 1.001));
  EXPECT_TRUE(util::almost_equal(1e12, 1e12 + 1.0, 0.0, 1e-9));
  EXPECT_TRUE(util::almost_equal(0.0, 1e-12));
}

TEST(NumericGradient, MatchesPolynomialDerivative) {
  const auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 3.0 * x[1] + x[0] * x[1] * x[1];
  };
  const std::vector<double> point{2.0, -1.0};
  const std::vector<double> grad = util::numeric_gradient(f, point);
  // df/dx0 = 2 x0 + x1² = 5; df/dx1 = 3 + 2 x0 x1 = -1.
  EXPECT_NEAR(grad[0], 5.0, 1e-6);
  EXPECT_NEAR(grad[1], -1.0, 1e-6);
}

TEST(NumericSecondDerivative, MatchesPolynomial) {
  const auto f = [](const std::vector<double>& x) {
    return std::pow(x[0], 4);
  };
  // d²/dx² x^4 = 12 x² = 48 at x = 2.
  EXPECT_NEAR(util::numeric_second_derivative(f, {2.0}, 0), 48.0, 1e-3);
}

TEST(GoldenSection, FindsQuadraticMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 0.3; };
  const util::ScalarMinimum result =
      util::golden_section_minimize(f, -10.0, 10.0, 1e-8);
  EXPECT_NEAR(result.x, 1.7, 1e-6);
  EXPECT_NEAR(result.value, 0.3, 1e-10);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };  // minimum at the left edge
  const util::ScalarMinimum result =
      util::golden_section_minimize(f, 2.0, 5.0, 1e-8);
  EXPECT_NEAR(result.x, 2.0, 1e-6);
}

TEST(GoldenSection, RejectsBadBracket) {
  EXPECT_THROW(util::golden_section_minimize([](double x) { return x; }, 1.0,
                                             1.0, 1e-6),
               fap::util::PreconditionError);
}

TEST(GridMinimize, FindsBestGridPoint) {
  const auto f = [](double x) { return std::fabs(x - 0.42); };
  const util::GridMinimum result = util::grid_minimize(f, 0.0, 1.0, 101);
  EXPECT_NEAR(result.x, 0.42, 0.005 + 1e-12);
}

TEST(GridMinimize, EvaluatesEndpoints) {
  const auto f = [](double x) { return -x; };
  const util::GridMinimum result = util::grid_minimize(f, 0.0, 2.0, 5);
  EXPECT_DOUBLE_EQ(result.x, 2.0);
  EXPECT_DOUBLE_EQ(result.value, -2.0);
}

TEST(Sum, AddsElements) {
  EXPECT_DOUBLE_EQ(util::sum({}), 0.0);
  EXPECT_DOUBLE_EQ(util::sum({1.5, 2.5, -1.0}), 3.0);
}

TEST(LinfDistance, MaxAbsoluteDifference) {
  EXPECT_DOUBLE_EQ(util::linf_distance({1.0, 2.0}, {1.5, 1.0}), 1.0);
  EXPECT_THROW(util::linf_distance({1.0}, {1.0, 2.0}),
               fap::util::PreconditionError);
}

}  // namespace
