#include "util/numeric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace {

namespace util = fap::util;

TEST(AlmostEqual, Basics) {
  EXPECT_TRUE(util::almost_equal(1.0, 1.0));
  EXPECT_TRUE(util::almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(util::almost_equal(1.0, 1.001));
  EXPECT_TRUE(util::almost_equal(1e12, 1e12 + 1.0, 0.0, 1e-9));
  EXPECT_TRUE(util::almost_equal(0.0, 1e-12));
}

TEST(NumericGradient, MatchesPolynomialDerivative) {
  const auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 3.0 * x[1] + x[0] * x[1] * x[1];
  };
  const std::vector<double> point{2.0, -1.0};
  const std::vector<double> grad = util::numeric_gradient(f, point);
  // df/dx0 = 2 x0 + x1² = 5; df/dx1 = 3 + 2 x0 x1 = -1.
  EXPECT_NEAR(grad[0], 5.0, 1e-6);
  EXPECT_NEAR(grad[1], -1.0, 1e-6);
}

TEST(NumericSecondDerivative, MatchesPolynomial) {
  const auto f = [](const std::vector<double>& x) {
    return std::pow(x[0], 4);
  };
  // d²/dx² x^4 = 12 x² = 48 at x = 2.
  EXPECT_NEAR(util::numeric_second_derivative(f, {2.0}, 0), 48.0, 1e-3);
}

TEST(GoldenSection, FindsQuadraticMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 0.3; };
  const util::ScalarMinimum result =
      util::golden_section_minimize(f, -10.0, 10.0, 1e-8);
  EXPECT_NEAR(result.x, 1.7, 1e-6);
  EXPECT_NEAR(result.value, 0.3, 1e-10);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };  // minimum at the left edge
  const util::ScalarMinimum result =
      util::golden_section_minimize(f, 2.0, 5.0, 1e-8);
  EXPECT_NEAR(result.x, 2.0, 1e-6);
}

TEST(GoldenSection, RejectsBadBracket) {
  EXPECT_THROW(util::golden_section_minimize([](double x) { return x; }, 1.0,
                                             1.0, 1e-6),
               fap::util::PreconditionError);
}

TEST(GridMinimize, FindsBestGridPoint) {
  const auto f = [](double x) { return std::fabs(x - 0.42); };
  const util::GridMinimum result = util::grid_minimize(f, 0.0, 1.0, 101);
  EXPECT_NEAR(result.x, 0.42, 0.005 + 1e-12);
}

TEST(GridMinimize, EvaluatesEndpoints) {
  const auto f = [](double x) { return -x; };
  const util::GridMinimum result = util::grid_minimize(f, 0.0, 2.0, 5);
  EXPECT_DOUBLE_EQ(result.x, 2.0);
  EXPECT_DOUBLE_EQ(result.value, -2.0);
}

TEST(Sum, AddsElements) {
  EXPECT_DOUBLE_EQ(util::sum({}), 0.0);
  EXPECT_DOUBLE_EQ(util::sum({1.5, 2.5, -1.0}), 3.0);
}

TEST(ParseUint64, AcceptsPlainDecimalValues) {
  std::uint64_t value = 99;
  EXPECT_TRUE(util::parse_uint64("0", value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(util::parse_uint64("8", value));
  EXPECT_EQ(value, 8u);
  EXPECT_TRUE(util::parse_uint64("123456789", value));
  EXPECT_EQ(value, 123456789u);
  // Exactly UINT64_MAX still fits.
  EXPECT_TRUE(util::parse_uint64("18446744073709551615", value));
  EXPECT_EQ(value, ~std::uint64_t{0});
}

TEST(ParseUint64, RejectsNegativeInput) {
  // The regression this parser exists for: strtoull("-3") silently
  // wraps to 2^64 - 3, so "--jobs -3" used to request ~1.8e19 threads.
  std::uint64_t value = 7;
  EXPECT_FALSE(util::parse_uint64("-3", value));
  EXPECT_FALSE(util::parse_uint64("-0", value));
  EXPECT_EQ(value, 7u);  // failure leaves the output untouched
}

TEST(ParseUint64, RejectsOverflow) {
  std::uint64_t value = 7;
  // One past UINT64_MAX, and something absurd.
  EXPECT_FALSE(util::parse_uint64("18446744073709551616", value));
  EXPECT_FALSE(util::parse_uint64("99999999999999999999999", value));
  EXPECT_EQ(value, 7u);
}

TEST(ParseUint64, RejectsNonNumericJunk) {
  std::uint64_t value = 7;
  EXPECT_FALSE(util::parse_uint64(nullptr, value));
  EXPECT_FALSE(util::parse_uint64("", value));
  EXPECT_FALSE(util::parse_uint64("+3", value));
  EXPECT_FALSE(util::parse_uint64(" 3", value));
  EXPECT_FALSE(util::parse_uint64("3 ", value));
  EXPECT_FALSE(util::parse_uint64("12x", value));
  EXPECT_FALSE(util::parse_uint64("0x10", value));
  EXPECT_FALSE(util::parse_uint64("1e3", value));
  EXPECT_EQ(value, 7u);
}

TEST(LinfDistance, MaxAbsoluteDifference) {
  EXPECT_DOUBLE_EQ(util::linf_distance({1.0, 2.0}, {1.5, 1.0}), 1.0);
  EXPECT_THROW(util::linf_distance({1.0}, {1.0, 2.0}),
               fap::util::PreconditionError);
}

}  // namespace
