// Cross-module integration scenarios: topology -> model -> decentralized
// algorithm -> discrete-event validation; workload drift; scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "fap.hpp"
#include "test_helpers.hpp"

namespace {

namespace baselines = fap::baselines;
namespace core = fap::core;
namespace net = fap::net;
namespace sim = fap::sim;

TEST(Integration, OptimizeThenValidateWithDes) {
  // Build a 9-node random-metric network, optimize the allocation with the
  // decentralized algorithm, and verify with the discrete-event simulator
  // that the optimized allocation really measures cheaper than uniform.
  fap::util::Rng rng(2026);
  const net::Topology topology = net::make_random_metric(9, 3, rng);
  core::Workload workload;
  workload.lambda.assign(9, 0.0);
  for (double& rate : workload.lambda) {
    rate = rng.uniform(0.02, 0.12);
  }
  const core::SingleFileModel model(
      core::make_problem(topology, workload, /*mu=*/1.4, /*k=*/2.0));

  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult optimized =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(optimized.converged);

  auto measure = [&model](const std::vector<double>& x) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 120000;
    config.seed = 99;
    return sim::run_des(config).measured_cost;
  };
  const double measured_uniform = measure(core::uniform_allocation(model));
  const double measured_optimized = measure(optimized.x);
  EXPECT_LT(measured_optimized, measured_uniform);
  // And the analytic model predicts the measured values.
  EXPECT_NEAR(measured_optimized, optimized.cost, 0.05 * optimized.cost);
}

TEST(Integration, NightlyAdaptationToWorkloadDrift) {
  // Section 8: "the algorithm is run occasionally at night ... to
  // gradually improve the allocation". Start from the optimum for one
  // workload, shift the workload, resume from the current allocation, and
  // confirm a strictly better allocation for the new workload with few
  // iterations.
  const net::Topology ring = net::make_ring(6, 1.0);
  core::Workload before;
  before.lambda = {0.30, 0.02, 0.02, 0.02, 0.02, 0.02};
  core::Workload after;
  after.lambda = {0.02, 0.02, 0.02, 0.30, 0.02, 0.02};

  const core::SingleFileModel model_before(
      core::make_problem(ring, before, 1.0, 1.0));
  const core::SingleFileModel model_after(
      core::make_problem(ring, after, 1.0, 1.0));

  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator night1(model_before, options);
  const core::AllocationResult first =
      night1.run(core::uniform_allocation(model_before));
  ASSERT_TRUE(first.converged);

  const core::ResourceDirectedAllocator night2(model_after, options);
  const core::AllocationResult second = night2.run(first.x);
  ASSERT_TRUE(second.converged);
  EXPECT_LT(second.cost, model_after.cost(first.x));
  // The hot node moved from 0 to 3; the allocation must have followed.
  EXPECT_GT(second.x[3], second.x[0]);
}

TEST(Integration, IterationCountIsFlatInNetworkSize) {
  // The Figure 6 property as a test: iterations to converge (at a fixed
  // reasonable α) must grow far slower than the node count.
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  options.max_iterations = 10000;
  std::vector<std::size_t> iteration_counts;
  for (const std::size_t n : {4u, 8u, 16u}) {
    const net::Topology topology = net::make_complete(n, 1.0);
    const core::SingleFileModel model(
        core::make_problem(topology, core::Workload::uniform(n, 1.0),
                           /*mu=*/1.5, /*k=*/1.0));
    std::vector<double> start(n, 0.0);
    start[0] = 0.8;
    start[1] = 0.1;
    start[2] = 0.1;
    const core::ResourceDirectedAllocator allocator(model, options);
    const core::AllocationResult result = allocator.run(start);
    ASSERT_TRUE(result.converged) << "n=" << n;
    iteration_counts.push_back(result.iterations);
  }
  // 4x more nodes must cost less than 3x the iterations (paper: ~flat).
  EXPECT_LT(iteration_counts[2],
            3 * std::max<std::size_t>(iteration_counts[0], 1));
}

TEST(Integration, MultiFileOptimizationAndProtocolAgree) {
  const net::Topology grid = net::make_grid(2, 3, 1.0);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(grid),
      {{0.05, 0.05, 0.2, 0.05, 0.05, 0.05},
       {0.2, 0.05, 0.05, 0.05, 0.05, 0.05}},
      std::vector<double>(6, 1.5),
      1.0,
      fap::queueing::DelayModel()};
  const core::MultiFileModel model(problem);

  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-5;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult central =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(central.converged);

  sim::ProtocolConfig config;
  config.algorithm = options;
  const sim::ProtocolResult protocol = sim::run_protocol(
      model, core::uniform_allocation(model), config);
  ASSERT_TRUE(protocol.converged);
  for (std::size_t i = 0; i < model.dimension(); ++i) {
    EXPECT_EQ(protocol.x[i], central.x[i]);
  }
}

TEST(Integration, RecordRoundingAfterConvergence) {
  // The full Section 5.1/8.1 pipeline: converge, round to record
  // granularity, and confirm the rounded allocation is feasible and close
  // in cost.
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(7, 8));
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  const std::vector<double> rounded =
      baselines::round_to_records(model, result.x, 500);
  EXPECT_NO_THROW(model.check_feasible(rounded));
  EXPECT_NEAR(model.cost(rounded), result.cost,
              0.01 * (1.0 + std::fabs(result.cost)));
}

TEST(Integration, MulticopyPipelineWithTrimAndDes) {
  // Multicopy: optimize on the ring, trim to at most one copy per node,
  // and validate the trimmed allocation in the simulator.
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  core::MultiCopyOptions options;
  options.alpha = 0.1;
  options.max_iterations = 3000;
  const core::MultiCopyAllocator allocator(model, options);
  const core::MultiCopyResult result =
      allocator.run({0.9, 0.5, 0.35, 0.25});
  const std::vector<double> deployable =
      core::trim_to_whole_copy(model, result.best_x);
  for (const double xi : deployable) {
    EXPECT_LE(xi, 1.0 + 1e-12);
  }
  sim::DesConfig config = sim::des_config_for(model, deployable);
  config.measured_accesses = 100000;
  const sim::DesResult des = sim::run_des(config);
  const double analytic = model.cost(deployable);  // λ_total = 1
  EXPECT_NEAR(des.measured_cost, analytic, 0.06 * analytic);
}

TEST(Integration, HeterogeneousServiceRatesShiftTheOptimum) {
  // A fast node should end up holding more of the file than slow ones.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {4.0, 1.5, 1.5, 1.5};
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.x[0], result.x[1]);
  EXPECT_GT(result.x[0], result.x[2]);
  EXPECT_GT(result.x[0], result.x[3]);
}

TEST(Integration, MG1ModelChangesTheOptimumButNotTheInvariants) {
  // Section 5.4: alternate queueing models slot in without affecting
  // feasibility or monotonicity.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.delay = fap::queueing::DelayModel::md1();
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.record_trace = true;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-12);
  }
  // Symmetric ring: still the uniform optimum, at lower absolute cost
  // (deterministic service queues less).
  EXPECT_LT(result.cost, 1.8);
}

}  // namespace
