// Tests for the file layer: fragment maps, the directory service, record
// popularity, and the weighted-record placement pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/single_file.hpp"
#include "fs/directory.hpp"
#include "fs/fragment_map.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
namespace fs = fap::fs;
using fap::util::PreconditionError;

// --- FragmentMap ------------------------------------------------------------

TEST(FragmentMap, SplitsAtRecordBoundariesContiguously) {
  const fs::FragmentMap map =
      fs::FragmentMap::from_allocation(100, {0.25, 0.25, 0.25, 0.25});
  EXPECT_EQ(map.record_count(), 100u);
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_EQ(map.records_at(node), 25u);
    EXPECT_DOUBLE_EQ(map.fraction_at(node), 0.25);
  }
  EXPECT_EQ(map.range_at(0).begin, 0u);
  EXPECT_EQ(map.range_at(3).end, 100u);
  EXPECT_EQ(map.range_at(1).begin, map.range_at(0).end);
}

TEST(FragmentMap, EveryRecordAssignedExactlyOnce) {
  fap::util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nodes = 2 + rng.uniform_index(6);
    std::vector<double> x(nodes, 0.0);
    double sum = 0.0;
    for (double& xi : x) {
      xi = rng.exponential(1.0);
      sum += xi;
    }
    for (double& xi : x) {
      xi /= sum;
    }
    const std::size_t records = 7 + rng.uniform_index(200);
    const fs::FragmentMap map = fs::FragmentMap::from_allocation(records, x);
    std::size_t total = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
      total += map.records_at(node);
    }
    EXPECT_EQ(total, records);
    for (std::size_t r = 0; r < records; ++r) {
      const auto node = map.node_of(r);
      EXPECT_TRUE(map.range_at(node).contains(r)) << "record " << r;
    }
  }
}

TEST(FragmentMap, RoundingErrorBoundedByOneRecord) {
  const std::vector<double> x{0.37, 0.23, 0.29, 0.11};
  const fs::FragmentMap map = fs::FragmentMap::from_allocation(1000, x);
  const std::vector<double> fractions = map.fractions();
  EXPECT_LE(fap::util::linf_distance(fractions, x), 1.0 / 1000.0 + 1e-12);
}

TEST(FragmentMap, HandlesEmptyAndWholeFractions) {
  const fs::FragmentMap map =
      fs::FragmentMap::from_allocation(10, {0.0, 1.0, 0.0});
  EXPECT_EQ(map.records_at(0), 0u);
  EXPECT_EQ(map.records_at(1), 10u);
  EXPECT_EQ(map.node_of(0), 1u);
  EXPECT_EQ(map.node_of(9), 1u);
}

TEST(FragmentMap, LookupSkipsEmptyRanges) {
  // Nodes 1 and 2 hold nothing; lookups on either side must resolve.
  const fs::FragmentMap map(
      std::vector<std::size_t>{5, 0, 0, 5});
  EXPECT_EQ(map.node_of(4), 0u);
  EXPECT_EQ(map.node_of(5), 3u);
}

TEST(FragmentMap, RejectsBadInput) {
  EXPECT_THROW(fs::FragmentMap::from_allocation(0, {1.0}),
               PreconditionError);
  EXPECT_THROW(fs::FragmentMap::from_allocation(10, {0.5, 0.1}),
               PreconditionError);  // does not sum to 1
  EXPECT_THROW(fs::FragmentMap::from_allocation(10, {1.5, -0.5}),
               PreconditionError);
  const fs::FragmentMap map = fs::FragmentMap::from_allocation(10, {1.0});
  EXPECT_THROW(map.node_of(10), PreconditionError);
}

// --- Directory ---------------------------------------------------------------

TEST(Directory, LookupAndVersionedInstall) {
  fs::Directory directory(
      fs::FragmentMap::from_allocation(100, {1.0, 0.0}));
  EXPECT_EQ(directory.version(), 1u);
  EXPECT_EQ(directory.lookup(50), 0u);
  directory.install(fs::FragmentMap::from_allocation(100, {0.0, 1.0}));
  EXPECT_EQ(directory.version(), 2u);
  EXPECT_EQ(directory.lookup(50), 1u);
}

TEST(Directory, InstallRejectsDifferentFile) {
  fs::Directory directory(
      fs::FragmentMap::from_allocation(100, {0.5, 0.5}));
  EXPECT_THROW(
      directory.install(fs::FragmentMap::from_allocation(99, {0.5, 0.5})),
      PreconditionError);
  EXPECT_THROW(directory.install(
                   fs::FragmentMap::from_allocation(100, {0.5, 0.3, 0.2})),
               PreconditionError);
}

TEST(Directory, MigrationBillCountsMovedRecords) {
  fs::Directory directory(
      fs::FragmentMap::from_allocation(100, {0.5, 0.5}));
  // Identical layout: nothing moves.
  EXPECT_EQ(directory.migration_records(
                fs::FragmentMap::from_allocation(100, {0.5, 0.5})),
            0u);
  // Shift the boundary by 10 records: exactly 10 move.
  EXPECT_EQ(directory.migration_records(
                fs::FragmentMap::from_allocation(100, {0.6, 0.4})),
            10u);
  // Full swap: everything moves.
  EXPECT_EQ(directory.migration_records(
                fs::FragmentMap::from_allocation(100, {0.0, 1.0})),
            50u);
}

// --- Popularity ----------------------------------------------------------------

TEST(Popularity, UniformAndZipfAreDistributions) {
  for (const auto& p :
       {fs::uniform_popularity(100), fs::zipf_popularity(100, 0.0),
        fs::zipf_popularity(100, 1.0), fs::zipf_popularity(100, 2.0)}) {
    EXPECT_NEAR(fap::util::sum(p), 1.0, 1e-9);
    for (const double value : p) {
      EXPECT_GT(value, 0.0);
    }
  }
}

TEST(Popularity, ZipfZeroIsUniformAndSkewOrdersRecords) {
  const auto uniform = fs::zipf_popularity(50, 0.0);
  for (const double p : uniform) {
    EXPECT_NEAR(p, 0.02, 1e-12);
  }
  const auto skewed = fs::zipf_popularity(50, 1.2);
  for (std::size_t r = 1; r < 50; ++r) {
    EXPECT_GT(skewed[r - 1], skewed[r]);
  }
  // Head heaviness grows with s.
  EXPECT_GT(fs::zipf_popularity(50, 2.0)[0], skewed[0]);
}

TEST(Popularity, NodeAccessSharesAggregateUnderLayout) {
  const fs::FragmentMap map =
      fs::FragmentMap::from_allocation(4, {0.5, 0.5});
  const std::vector<double> popularity{0.4, 0.3, 0.2, 0.1};
  const std::vector<double> shares =
      fs::node_access_shares(map, popularity);
  EXPECT_NEAR(shares[0], 0.7, 1e-12);
  EXPECT_NEAR(shares[1], 0.3, 1e-12);
}

TEST(PopularitySplit, MatchesTargetSharesByMassNotByRecordCount) {
  // Zipf head: node 0 should get a SMALL record range carrying half the
  // access mass, not half the records.
  const std::vector<double> popularity = fs::zipf_popularity(1000, 1.0);
  const std::vector<double> shares{0.5, 0.3, 0.2};
  const fs::FragmentMap layout = fs::popularity_split(popularity, shares);
  const std::vector<double> achieved =
      fs::node_access_shares(layout, popularity);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    // Each boundary lands within one record's mass of its target, and
    // the head records are the heaviest (p_0 ≈ 0.13 at s=1, R=1000).
    EXPECT_NEAR(achieved[i], shares[i], 0.14) << "node " << i;
  }
  // Under skew, half the mass needs far fewer than half the records.
  EXPECT_LT(layout.records_at(0), 200u);
  EXPECT_EQ(layout.record_count(), 1000u);
}

TEST(PopularitySplit, UniformPopularityReducesToRecordSplit) {
  const std::vector<double> popularity = fs::uniform_popularity(100);
  const fs::FragmentMap layout =
      fs::popularity_split(popularity, {0.25, 0.25, 0.5});
  EXPECT_EQ(layout.records_at(0), 25u);
  EXPECT_EQ(layout.records_at(1), 25u);
  EXPECT_EQ(layout.records_at(2), 50u);
}

TEST(PopularitySplit, ZeroShareYieldsEmptyRange) {
  const fs::FragmentMap layout =
      fs::popularity_split(fs::uniform_popularity(10), {0.0, 1.0, 0.0});
  EXPECT_EQ(layout.records_at(0), 0u);
  EXPECT_EQ(layout.records_at(1), 10u);
  EXPECT_EQ(layout.records_at(2), 0u);
}

TEST(PopularitySplit, NormalizesSharesAndRejectsBadInput) {
  // Shares need not sum to 1 — only ratios matter.
  const fs::FragmentMap layout =
      fs::popularity_split(fs::uniform_popularity(100), {1.0, 1.0});
  EXPECT_EQ(layout.records_at(0), 50u);
  EXPECT_THROW(fs::popularity_split({}, {1.0}), PreconditionError);
  EXPECT_THROW(fs::popularity_split({1.0}, {}), PreconditionError);
  EXPECT_THROW(fs::popularity_split({1.0, -0.5}, {1.0}), PreconditionError);
  EXPECT_THROW(fs::popularity_split({1.0}, {0.0, 0.0}), PreconditionError);
}

TEST(Popularity, SamplerFollowsTheDistribution) {
  const std::vector<double> popularity{0.6, 0.3, 0.1};
  const fs::RecordSampler sampler(popularity);
  fap::util::Rng rng(11);
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[sampler.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.6, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 0.1, 0.01);
}

// --- Weighted placement ----------------------------------------------------------

TEST(WeightedPlacement, PackingMatchesTargetsWithinOneRecordWeight) {
  const std::vector<double> popularity = fs::zipf_popularity(500, 1.0);
  const std::vector<double> targets{0.4, 0.3, 0.2, 0.1};
  const fs::RecordAssignment assignment =
      fs::pack_records(popularity, targets);
  const double heaviest = popularity.front();
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_NEAR(assignment.achieved_shares[node], targets[node],
                heaviest + 1e-9)
        << "node " << node;
  }
  EXPECT_NEAR(fap::util::sum(assignment.achieved_shares), 1.0, 1e-9);
  EXPECT_NEAR(fap::util::sum(assignment.storage_fractions), 1.0, 1e-9);
}

TEST(WeightedPlacement, UniformPopularityReducesToRecordRounding) {
  const std::vector<double> popularity = fs::uniform_popularity(400);
  const std::vector<double> targets{0.25, 0.25, 0.25, 0.25};
  const fs::RecordAssignment assignment =
      fs::pack_records(popularity, targets);
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_NEAR(assignment.storage_fractions[node], 0.25, 1e-9);
    EXPECT_NEAR(assignment.achieved_shares[node], 0.25, 1e-9);
  }
}

TEST(WeightedPlacement, PipelineCostNearFractionalBound) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  for (const double s : {0.0, 0.8, 1.5}) {
    const fs::WeightedPlacement placement = fs::optimize_record_placement(
        model, fs::zipf_popularity(1000, s), options);
    EXPECT_GE(placement.achieved_cost, placement.fractional_cost - 1e-9);
    // At s = 1.5 the single hottest record carries ~39% of the traffic,
    // so no packing can match the uniform 25% shares exactly; the greedy
    // still lands within a few percent of the fractional bound.
    EXPECT_LT(placement.achieved_cost, 1.03 * placement.fractional_cost)
        << "zipf s=" << s;
  }
}

TEST(WeightedPlacement, StorageAndAccessSharesDivergeUnderSkew) {
  // Heterogeneous μ so the optimal shares are non-uniform, plus heavy
  // skew: the fast node should serve a large share from few records.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {5.0, 1.5, 1.5, 1.5};
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const fs::WeightedPlacement placement = fs::optimize_record_placement(
      model, fs::zipf_popularity(2000, 1.4), options);
  const auto& a = placement.assignment;
  // Node 0 (fast) serves the most traffic...
  EXPECT_GT(a.achieved_shares[0], a.achieved_shares[1]);
  // ...and the greedy packs hot records first, so its storage fraction is
  // smaller than its access share.
  EXPECT_LT(a.storage_fractions[0], a.achieved_shares[0]);
}

TEST(WeightedPlacement, RejectsBadInput) {
  EXPECT_THROW(fs::pack_records({}, {1.0}), PreconditionError);
  EXPECT_THROW(fs::pack_records({0.5, 0.5}, {0.7, 0.7}),
               PreconditionError);
  EXPECT_THROW(fs::pack_records({0.5, 0.7}, {0.5, 0.5}),
               PreconditionError);  // popularity not normalized -> shares
                                    // precondition fails downstream
}

}  // namespace
