// Tests for the Section 8.2 volume-transfer cost model.
#include "core/volume_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;

TEST(VolumeModel, ReducesToBaseModelWhenVolumeFactorIsZero) {
  const core::VolumeTransferModel volume(core::make_paper_ring_problem(),
                                         /*base_volume=*/1.0,
                                         /*volume_factor=*/0.0);
  const core::SingleFileModel base(core::make_paper_ring_problem());
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::vector<double> x = fap::testing::random_feasible(base, seed);
    EXPECT_NEAR(volume.cost(x), base.cost(x), 1e-12);
    const auto g1 = volume.gradient(x);
    const auto g2 = base.gradient(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(g1[i], g2[i], 1e-12);
    }
  }
}

TEST(VolumeModel, CostHandComputed) {
  // Paper ring, b = 1, v = 2, uniform allocation: per node,
  // x (C (b + v x) + k/(μ - λx)) = 0.25 (1·1.5 + 0.8) = 0.575; total 2.3.
  const core::VolumeTransferModel model(core::make_paper_ring_problem(), 1.0,
                                        2.0);
  EXPECT_NEAR(model.cost({0.25, 0.25, 0.25, 0.25}), 2.3, 1e-12);
}

class VolumeDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(VolumeDerivativeTest, DerivativesMatchNumeric) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fap::util::Rng rng(seed);
  const core::VolumeTransferModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 6),
      rng.uniform(0.1, 2.0), rng.uniform(0.1, 3.0));
  const std::vector<double> x = fap::testing::random_feasible(model, seed + 4);
  const auto f = [&model](const std::vector<double>& v) {
    return model.cost(v);
  };
  const std::vector<double> numeric = fap::util::numeric_gradient(f, x);
  const std::vector<double> analytic = model.gradient(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-4 * (1.0 + std::fabs(numeric[i])));
    const double numeric2 = fap::util::numeric_second_derivative(f, x, i);
    EXPECT_NEAR(model.second_derivative(x)[i], numeric2,
                2e-2 * (1.0 + std::fabs(numeric2)));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, VolumeDerivativeTest,
                         ::testing::Range(1, 7));

TEST(VolumeModel, VolumePenaltySpreadsTheFileEvenWithoutDelay) {
  // k = 0 and asymmetric communication: the Section 4 model concentrates
  // everything at the cheapest node, but a volume term makes the
  // communication cost quadratic and fragmentation optimal.
  fap::core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.k = 0.0;
  // Asymmetric workload with a *unique* cheapest node (C_0 = 0.65 beats
  // every other C_i), so the linear optimum is a single vertex.
  problem.lambda = {0.5, 0.25, 0.15, 0.1};

  const core::SingleFileModel linear(problem);
  const auto linear_opt = fap::baselines::projected_gradient_solve(
      linear, core::uniform_allocation(linear));
  const double linear_max =
      *std::max_element(linear_opt.x.begin(), linear_opt.x.end());
  EXPECT_NEAR(linear_max, 1.0, 1e-6);  // concentration

  const core::VolumeTransferModel quadratic(problem, /*b=*/0.2, /*v=*/2.0);
  const auto quadratic_opt = fap::baselines::projected_gradient_solve(
      quadratic, core::uniform_allocation(quadratic));
  const double quadratic_max =
      *std::max_element(quadratic_opt.x.begin(), quadratic_opt.x.end());
  EXPECT_LT(quadratic_max, 0.9);  // fragmentation
}

TEST(VolumeModel, LargerVolumeFactorSpreadsMore) {
  fap::core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.lambda = {0.4, 0.3, 0.2, 0.1};
  auto spread_at = [&problem](double v) {
    const core::VolumeTransferModel model(problem, 1.0, v);
    const auto opt = fap::baselines::projected_gradient_solve(
        model, core::uniform_allocation(model));
    return *std::max_element(opt.x.begin(), opt.x.end());
  };
  EXPECT_GE(spread_at(0.0), spread_at(1.0) - 1e-9);
  EXPECT_GE(spread_at(1.0), spread_at(5.0) - 1e-9);
}

TEST(VolumeModel, DecentralizedAlgorithmHandlesIt) {
  const core::VolumeTransferModel model(core::make_paper_ring_problem(), 1.0,
                                        2.0);
  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-5);
}

TEST(VolumeModel, RejectsBadParameters) {
  EXPECT_THROW(core::VolumeTransferModel(core::make_paper_ring_problem(),
                                         -1.0, 1.0),
               fap::util::PreconditionError);
  EXPECT_THROW(
      core::VolumeTransferModel(core::make_paper_ring_problem(), 0.0, 0.0),
      fap::util::PreconditionError);
}

}  // namespace
