#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "net/shortest_paths.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace net = fap::net;
using fap::util::PreconditionError;

// Providers must return rows byte-identical to the dense APSP matrix —
// the contract that makes them drop-in replacements on every path.
void expect_rows_match_dense(const net::Topology& topology) {
  const net::CostMatrix dense = net::all_pairs_shortest_paths(topology);
  const net::RowCostProvider provider(topology, /*row_cache_capacity=*/4);
  const std::size_t n = topology.node_count();
  ASSERT_EQ(provider.node_count(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::CostRow row = provider.row(i);
    ASSERT_EQ(row.size(), n);
    EXPECT_EQ(std::memcmp(row.data(), dense.row(i), n * sizeof(double)), 0)
        << "row " << i << " differs from the dense matrix";
  }
}

TEST(RowCostProvider, RowsBitIdenticalToDenseOnRing) {
  expect_rows_match_dense(net::make_ring(33, 1.25));
}

TEST(RowCostProvider, RowsBitIdenticalToDenseOnGrid) {
  expect_rows_match_dense(net::make_grid(6, 7, 0.75));
}

TEST(RowCostProvider, RowsBitIdenticalToDenseOnRandomMetric) {
  fap::util::Rng rng(11);
  expect_rows_match_dense(net::make_random_metric(48, 4, rng));
}

TEST(RowCostProvider, RowsBitIdenticalToDenseOnErdosRenyi) {
  fap::util::Rng rng(7);
  expect_rows_match_dense(net::make_erdos_renyi(40, 0.15, 0.5, 2.0, rng));
}

TEST(RowCostProvider, RequiresConnectedTopology) {
  net::Topology split(4);
  split.add_edge(0, 1, 1.0);
  split.add_edge(2, 3, 1.0);
  EXPECT_THROW(net::RowCostProvider provider(split), PreconditionError);
}

TEST(DenseCostProvider, RowsAreZeroCopyViews) {
  const net::Topology ring = net::make_ring(5, 1.0);
  auto matrix = std::make_shared<const net::CostMatrix>(
      net::all_pairs_shortest_paths(ring));
  const net::DenseCostProvider provider(matrix);
  EXPECT_EQ(provider.node_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(provider.row(i).data(), matrix->row(i));  // same storage
    EXPECT_EQ(provider.cost(i, i), 0.0);
  }
}

TEST(DenseCostProvider, OwningRowsOutliveTheProvider) {
  const net::Topology ring = net::make_ring(5, 1.0);
  net::CostRow row;
  {
    auto matrix = std::make_shared<const net::CostMatrix>(
        net::all_pairs_shortest_paths(ring));
    const net::DenseCostProvider provider(std::move(matrix));
    row = provider.row(0);
  }
  // The handle's keepalive shares matrix ownership: still readable.
  EXPECT_EQ(row[0], 0.0);
  EXPECT_EQ(row[1], 1.0);
}

TEST(RowCostProvider, LruEvictsLeastRecentlyUsedRow) {
  const net::Topology ring = net::make_ring(8, 1.0);
  const net::RowCostProvider provider(ring, /*row_cache_capacity=*/2);
  provider.row(0);  // miss, cache {0}
  provider.row(1);  // miss, cache {1, 0}
  provider.row(0);  // hit,  cache {0, 1}
  provider.row(2);  // miss, evicts 1 (LRU), cache {2, 0}
  provider.row(0);  // hit
  provider.row(1);  // miss again: 1 was evicted
  const auto stats = provider.cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 2u);  // rows 1 and then 0 or 2's victim
}

TEST(RowCostProvider, HandlesSurviveEviction) {
  const net::Topology ring = net::make_ring(6, 1.0);
  const net::RowCostProvider provider(ring, /*row_cache_capacity=*/1);
  const net::CostRow row0 = provider.row(0);
  provider.row(1);  // evicts row 0 from the cache
  provider.row(2);  // evicts row 1
  // The handle still owns the evicted storage; values stay correct.
  EXPECT_EQ(row0[0], 0.0);
  EXPECT_EQ(row0[1], 1.0);
  EXPECT_EQ(row0[3], 3.0);
  // And a re-request recomputes the identical bytes.
  const net::CostRow again = provider.row(0);
  EXPECT_NE(again.data(), row0.data());
  EXPECT_EQ(std::memcmp(again.data(), row0.data(), 6 * sizeof(double)), 0);
}

// Single-flight under contention: many workers hammering a row set no
// larger than the cache must compute each row exactly once and always
// read consistent data. Run under TSan in CI.
TEST(RowCostProvider, ConcurrentRequestsComputeEachRowOnce) {
  fap::util::Rng rng(23);
  const net::Topology topology = net::make_random_metric(40, 4, rng);
  const net::CostMatrix dense = net::all_pairs_shortest_paths(topology);
  const net::RowCostProvider provider(topology, /*row_cache_capacity=*/8);
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kRows = 4;  // << capacity: no eviction noise
  constexpr std::size_t kRequests = 64;
  std::atomic<int> mismatches{0};
  fap::runtime::ThreadPool pool(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pool.submit([&, w] {
      for (std::size_t r = 0; r < kRequests; ++r) {
        const std::size_t i = (w + r) % kRows;
        const net::CostRow row = provider.row(i);
        if (std::memcmp(row.data(), dense.row(i),
                        row.size() * sizeof(double)) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = provider.cache_stats();
  EXPECT_EQ(stats.misses, kRows);  // single-flight: one fill per row
  EXPECT_EQ(stats.hits + stats.misses, kWorkers * kRequests);
  EXPECT_EQ(stats.evictions, 0u);
}

// Capacity-1 storm: every request for a different row evicts the last,
// and concurrent waiters may receive handles to already-evicted slots.
// Values must stay correct regardless of the eviction interleaving.
TEST(RowCostProvider, CapacityOneStormStaysCorrect) {
  fap::util::Rng rng(31);
  const net::Topology topology = net::make_random_metric(24, 3, rng);
  const net::CostMatrix dense = net::all_pairs_shortest_paths(topology);
  const net::RowCostProvider provider(topology, /*row_cache_capacity=*/1);
  constexpr std::size_t kWorkers = 8;
  std::atomic<int> mismatches{0};
  fap::runtime::ThreadPool pool(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pool.submit([&, w] {
      for (std::size_t r = 0; r < 48; ++r) {
        const std::size_t i = (w * 5 + r * 7) % 24;
        const net::CostRow row = provider.row(i);
        if (std::memcmp(row.data(), dense.row(i),
                        row.size() * sizeof(double)) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(HierarchicalCostProvider, CachesRowsWithSingleFlight) {
  const net::TieredNetwork tiered = net::make_fat_tree(2, 3);
  const net::HierarchicalCostProvider provider(tiered.spec,
                                               /*row_cache_capacity=*/2);
  const net::CostRow first = provider.row(3);
  const net::CostRow second = provider.row(3);
  EXPECT_EQ(first.data(), second.data());  // same cached storage
  const auto stats = provider.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(CostProviderContracts, RejectBadArguments) {
  const net::Topology ring = net::make_ring(4, 1.0);
  EXPECT_THROW(net::RowCostProvider(ring, /*row_cache_capacity=*/0),
               PreconditionError);
  const net::RowCostProvider provider(ring);
  EXPECT_THROW(provider.row(4), PreconditionError);
  const net::TieredNetwork tiered = net::make_fat_tree(2, 2);
  const net::HierarchicalCostProvider hier(tiered.spec);
  EXPECT_THROW(hier.cost(0, 99), PreconditionError);
  EXPECT_THROW(net::DenseCostProvider(nullptr), PreconditionError);
}

}  // namespace
