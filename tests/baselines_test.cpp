// Tests for the baselines: integral enumeration, the centralized projected
// gradient solver, the simple heuristics, and the price-directed FAP
// adapter.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/heuristics.hpp"
#include "baselines/integral.hpp"
#include "baselines/price_directed_fap.hpp"
#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/multi_file.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace baselines = fap::baselines;
namespace core = fap::core;
namespace net = fap::net;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

// --- project_simplex -------------------------------------------------------

TEST(ProjectSimplex, FeasiblePointIsFixed) {
  const std::vector<double> x{0.2, 0.3, 0.5};
  const std::vector<double> p = baselines::project_simplex(x, 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p[i], x[i], 1e-12);
  }
}

TEST(ProjectSimplex, ProjectsOntoScaledSimplex) {
  for (const double total : {1.0, 2.5}) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      fap::util::Rng rng(seed);
      std::vector<double> v(6);
      for (double& value : v) {
        value = rng.uniform(-2.0, 3.0);
      }
      const std::vector<double> p = baselines::project_simplex(v, total);
      EXPECT_NEAR(fap::util::sum(p), total, 1e-9);
      for (const double xi : p) {
        EXPECT_GE(xi, 0.0);
      }
      // Idempotence.
      const std::vector<double> pp = baselines::project_simplex(p, total);
      for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_NEAR(pp[i], p[i], 1e-9);
      }
    }
  }
}

TEST(ProjectSimplex, KnownProjection) {
  // Projecting (1, 0.5) onto the unit simplex: subtract 0.25 from each.
  const std::vector<double> p = baselines::project_simplex({1.0, 0.5}, 1.0);
  EXPECT_NEAR(p[0], 0.75, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
}

TEST(ProjectSimplex, OptimalityViaVariationalInequality) {
  // For the Euclidean projection p of v: (v - p)·(z - p) <= 0 for every
  // feasible z; verify against random feasible z.
  fap::util::Rng rng(77);
  std::vector<double> v(5);
  for (double& value : v) {
    value = rng.uniform(-1.0, 2.0);
  }
  const std::vector<double> p = baselines::project_simplex(v, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> z(5);
    double sum = 0.0;
    for (double& zi : z) {
      zi = rng.exponential(1.0);
      sum += zi;
    }
    for (double& zi : z) {
      zi /= sum;
    }
    double inner = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      inner += (v[i] - p[i]) * (z[i] - p[i]);
    }
    EXPECT_LE(inner, 1e-9);
  }
}

// --- projected gradient ----------------------------------------------------

TEST(ProjectedGradient, SolvesThePaperRing) {
  const core::SingleFileModel model = paper_model();
  const auto result = baselines::projected_gradient_solve(
      model, {1.0, 0.0, 0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 1.8, 1e-6);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 1e-4);
  }
}

TEST(ProjectedGradient, HandlesInfeasibleStartByProjecting) {
  const core::SingleFileModel model = paper_model();
  const auto result = baselines::projected_gradient_solve(
      model, {5.0, 5.0, 5.0, 5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 1.8, 1e-6);
}

TEST(ProjectedGradient, AgreesWithDecentralizedOnRandomProblems) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const core::SingleFileModel model(
        fap::testing::random_single_file_problem(seed, 7));
    const auto pg = baselines::projected_gradient_solve(
        model, core::uniform_allocation(model));
    core::AllocatorOptions options;
    options.alpha = 0.1;
    options.epsilon = 1e-7;
    options.max_iterations = 300000;
    const core::ResourceDirectedAllocator allocator(model, options);
    const auto rd = allocator.run(core::uniform_allocation(model));
    ASSERT_TRUE(rd.converged);
    EXPECT_NEAR(pg.cost, rd.cost, 1e-5 * (1.0 + std::fabs(pg.cost)));
  }
}

// --- integral baselines ----------------------------------------------------

TEST(IntegralSingle, PicksTheCheapestHost) {
  // Make node 2 the uniquely cheapest host by giving it a fast server.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {1.5, 1.5, 30.0, 1.5};
  const core::SingleFileModel model(std::move(problem));
  const baselines::IntegralResult result =
      baselines::best_integral_single(model);
  ASSERT_EQ(result.hosts.size(), 1u);
  EXPECT_EQ(result.hosts[0], 2u);
  EXPECT_NEAR(result.x[2], 1.0, 1e-12);
  EXPECT_NEAR(result.cost, model.cost(result.x), 1e-12);
}

TEST(IntegralSingle, MatchesBruteForceOnRandomProblems) {
  for (const std::uint64_t seed : {3u, 5u, 8u}) {
    const core::SingleFileModel model(
        fap::testing::random_single_file_problem(seed, 6));
    const baselines::IntegralResult best =
        baselines::best_integral_single(model);
    for (std::size_t host = 0; host < 6; ++host) {
      std::vector<double> x(6, 0.0);
      x[host] = 1.0;
      EXPECT_GE(model.cost(x), best.cost - 1e-12);
    }
  }
}

TEST(IntegralMulti, AccountsForQueueContention) {
  // Two files on a star: hosting both at the hub minimizes communication
  // but saturates its queue; the exact enumeration must separate them when
  // delay dominates.
  const net::Topology star = net::make_star(4, 1.0);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(star),
      {{0.2, 0.1, 0.1, 0.1}, {0.2, 0.1, 0.1, 0.1}},
      {1.2, 1.2, 1.2, 1.2},
      /*k=*/30.0,  // delay strongly weighted
      fap::queueing::DelayModel()};
  const core::MultiFileModel model(problem);
  const baselines::IntegralResult result = baselines::best_integral_multi(model);
  ASSERT_EQ(result.hosts.size(), 2u);
  EXPECT_NE(result.hosts[0], result.hosts[1]);
}

TEST(IntegralMulti, RejectsCombinatorialBlowup) {
  const net::Topology ring = net::make_ring(10, 1.0);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(ring),
      std::vector<std::vector<double>>(
          8, std::vector<double>(10, 0.01)),
      std::vector<double>(10, 2.0),
      1.0,
      fap::queueing::DelayModel()};
  const core::MultiFileModel model(problem);
  EXPECT_THROW(baselines::best_integral_multi(model, /*cap=*/1000),
               fap::util::PreconditionError);
}

TEST(IntegralRing, EnumeratesAllPlacements) {
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const baselines::IntegralResult best = baselines::best_integral_ring(model);
  ASSERT_EQ(best.hosts.size(), 2u);
  // Brute-check every 2-subset.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      std::vector<double> x(4, 0.0);
      x[a] = 1.0;
      x[b] = 1.0;
      EXPECT_GE(model.cost(x), best.cost - 1e-12);
    }
  }
}

TEST(IntegralRing, RejectsFractionalCopyCount) {
  const core::RingModel model(
      fap::testing::random_ring_problem(7, 5, 2.5));
  EXPECT_THROW(baselines::best_integral_ring(model),
               fap::util::PreconditionError);
}

// --- heuristics -------------------------------------------------------------

TEST(Heuristics, MinCommCostConcentratesAtCheapestNode) {
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  // Bias communication toward node 1 by raising λ of its neighbors.
  problem.lambda = {0.1, 0.7, 0.1, 0.1};
  const core::SingleFileModel model(std::move(problem));
  const std::vector<double> x = baselines::min_comm_cost_allocation(model);
  EXPECT_NEAR(fap::util::sum(x), 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);  // C_1 minimal: the busiest node's home
}

TEST(Heuristics, ProportionalAllocationTracksDemand) {
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.lambda = {0.4, 0.3, 0.2, 0.1};
  const core::SingleFileModel model(std::move(problem));
  const std::vector<double> x =
      baselines::proportional_to_demand_allocation(model);
  EXPECT_NEAR(x[0], 0.4, 1e-12);
  EXPECT_NEAR(x[3], 0.1, 1e-12);
}

TEST(Heuristics, GreedyChunksApproachTheContinuousOptimum) {
  const core::SingleFileModel model = paper_model();
  const double optimal = 1.8;
  const double coarse = model.cost(baselines::greedy_chunk_allocation(model, 4));
  const double fine = model.cost(baselines::greedy_chunk_allocation(model, 64));
  EXPECT_GE(coarse, fine - 1e-12);
  EXPECT_NEAR(fine, optimal, 0.01);
  EXPECT_LE(coarse, model.cost({1.0, 0.0, 0.0, 0.0}));  // beats integral
}

TEST(Heuristics, RoundToRecordsPreservesTotalsAndGranularity) {
  const core::SingleFileModel model = paper_model();
  const std::vector<double> x{0.37, 0.23, 0.29, 0.11};
  for (const std::size_t records : {10u, 100u, 1000u}) {
    const std::vector<double> rounded =
        baselines::round_to_records(model, x, records);
    EXPECT_NEAR(fap::util::sum(rounded), 1.0, 1e-9);
    for (const double xi : rounded) {
      const double in_units = xi * static_cast<double>(records);
      EXPECT_NEAR(in_units, std::round(in_units), 1e-9);
    }
    // Error shrinks with record count.
    EXPECT_LE(fap::util::linf_distance(rounded, x),
              1.0 / static_cast<double>(records) + 1e-12);
  }
}

TEST(Heuristics, RoundingCostApproachesFractionalCost) {
  // "the larger the number of records the closer ... to optimality"
  // (Section 8.1).
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-6;
  const core::ResourceDirectedAllocator allocator(model, options);
  const auto result = allocator.run({0.8, 0.1, 0.1, 0.0});
  const double fractional = model.cost(result.x);
  const double rounded10 =
      model.cost(baselines::round_to_records(model, result.x, 10));
  const double rounded1000 =
      model.cost(baselines::round_to_records(model, result.x, 1000));
  EXPECT_GE(rounded10, fractional - 1e-9);
  EXPECT_LE(rounded1000 - fractional, rounded10 - fractional + 1e-9);
}

// --- price-directed FAP ------------------------------------------------------

TEST(PriceDirectedFap, EquilibriumMatchesResourceDirectedOptimum) {
  const core::SingleFileModel model = paper_model();
  const fap::econ::Equilibrium eq =
      baselines::price_directed_fap_equilibrium(model);
  EXPECT_NEAR(fap::util::sum(eq.x), 1.0, 1e-5);
  for (const double xi : eq.x) {
    EXPECT_NEAR(xi, 0.25, 1e-4);  // symmetric optimum
  }
}

TEST(PriceDirectedFap, EquilibriumOnAsymmetricProblem) {
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(13, 5));
  const fap::econ::Equilibrium eq =
      baselines::price_directed_fap_equilibrium(model);
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-8;
  options.max_iterations = 300000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const auto rd = allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(rd.converged);
  EXPECT_NEAR(model.cost(eq.x), rd.cost, 1e-4 * (1.0 + std::fabs(rd.cost)));
}

TEST(PriceDirectedFap, TatonnementPathIsInfeasibleBeforeConvergence) {
  const core::SingleFileModel model = paper_model();
  fap::econ::TatonnementOptions options;
  options.gamma = 0.05;
  options.initial_price = -10.0;  // far from the clearing price
  options.record_trace = true;
  options.tol = 1e-7;
  options.max_iterations = 100000;
  const fap::econ::TatonnementResult result =
      baselines::price_directed_fap(model, options);
  bool saw_infeasible = false;
  for (const auto& rec : result.trace) {
    if (std::fabs(rec.excess_demand) > 1e-2) {
      saw_infeasible = true;
      break;
    }
  }
  EXPECT_TRUE(saw_infeasible);
}

}  // namespace
