// The classical decomposition result the paper cites from Morgan & Levin
// [28] / Suri [33] (Section 3): when files do not interact, "the multiple
// file cost minimization problem was shown to decompose into individual
// file cost minimization problems". In our model files interact ONLY
// through the shared queues (the delay term); with k = 0 the coupling
// vanishes and the joint optimum must equal the per-file optima — a sharp
// cross-check between MultiFileModel and SingleFileModel. With k > 0 the
// coupling is real and the decomposition must fail.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/multi_file.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

struct Scenario {
  core::MultiFileProblem joint;
  std::vector<core::SingleFileProblem> separate;
};

Scenario make_setup(double k, std::uint64_t seed) {
  fap::util::Rng rng(seed);
  const net::Topology topology = net::make_random_metric(5, 2, rng);
  const net::CostMatrix comm = net::all_pairs_shortest_paths(topology);

  Scenario setup{core::MultiFileProblem{comm, {}, {}, k,
                                     fap::queueing::DelayModel()},
              {}};
  double total = 0.0;
  for (int f = 0; f < 2; ++f) {
    std::vector<double> lambda(5, 0.0);
    for (double& rate : lambda) {
      rate = rng.uniform(0.02, 0.12);
      total += rate;
    }
    setup.joint.per_file_lambda.push_back(lambda);
  }
  const double mu = total * 1.6;
  setup.joint.mu.assign(5, mu);
  for (int f = 0; f < 2; ++f) {
    setup.separate.push_back(core::SingleFileProblem{
        comm, setup.joint.per_file_lambda[static_cast<std::size_t>(f)],
        std::vector<double>(5, mu), k, fap::queueing::DelayModel(),
        {},
        {},
        {}});
  }
  return setup;
}

TEST(Decomposition, WithoutDelayCouplingJointEqualsPerFileOptima) {
  for (const std::uint64_t seed : {1u, 4u, 9u}) {
    const Scenario setup = make_setup(/*k=*/0.0, seed);
    const core::MultiFileModel joint(setup.joint);
    const auto joint_opt = fap::baselines::projected_gradient_solve(
        joint, core::uniform_allocation(joint));

    double separate_total = 0.0;
    for (const core::SingleFileProblem& problem : setup.separate) {
      const core::SingleFileModel single(problem);
      const auto single_opt = fap::baselines::projected_gradient_solve(
          single, core::uniform_allocation(single));
      separate_total += single_opt.cost;
    }
    EXPECT_NEAR(joint_opt.cost, separate_total,
                1e-5 * (1.0 + std::fabs(separate_total)))
        << "seed " << seed;
  }
}

TEST(Decomposition, DelayCouplingBreaksTheDecomposition) {
  // With queueing (k > 0), solving files independently ignores contention;
  // stitching the per-file optima together must cost at least as much as
  // the joint optimum — and strictly more when both files want the same
  // node.
  const Scenario setup = make_setup(/*k=*/4.0, 7);
  const core::MultiFileModel joint(setup.joint);
  const auto joint_opt = fap::baselines::projected_gradient_solve(
      joint, core::uniform_allocation(joint));

  std::vector<double> stitched(joint.dimension(), 0.0);
  for (std::size_t f = 0; f < 2; ++f) {
    const core::SingleFileModel single(setup.separate[f]);
    const auto single_opt = fap::baselines::projected_gradient_solve(
        single, core::uniform_allocation(single));
    for (std::size_t i = 0; i < 5; ++i) {
      stitched[joint.index(f, i)] = single_opt.x[i];
    }
  }
  const double stitched_cost = joint.cost(stitched);
  EXPECT_GE(stitched_cost, joint_opt.cost - 1e-9);
  EXPECT_GT(stitched_cost, joint_opt.cost + 1e-4);  // strictly suboptimal
}

TEST(Decomposition, DecentralizedJointRunMatchesDecomposedOptimaAtKZero) {
  const Scenario setup = make_setup(/*k=*/0.0, 13);
  const core::MultiFileModel joint(setup.joint);
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-7;
  options.max_iterations = 300000;
  const core::ResourceDirectedAllocator allocator(joint, options);
  const auto result = allocator.run(core::uniform_allocation(joint));
  ASSERT_TRUE(result.converged);
  double separate_total = 0.0;
  for (const core::SingleFileProblem& problem : setup.separate) {
    const core::SingleFileModel single(problem);
    const auto opt = fap::baselines::projected_gradient_solve(
        single, core::uniform_allocation(single));
    separate_total += opt.cost;
  }
  EXPECT_NEAR(result.cost, separate_total, 1e-4 * (1.0 + separate_total));
}

}  // namespace
