// The capacity price loop is the dual half of the catalog decomposition:
// its projected tâtonnement step, convergence rule (check residual
// BEFORE moving prices) and adaptive damping decide whether a million
// inner solves settle or thrash. These tests pin the mechanism on
// hand-computable demand sequences.
#include "catalog/capacity_price_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "econ/price_directed.hpp"
#include "util/contracts.hpp"

namespace {

using fap::catalog::CapacityPriceLoop;
using fap::catalog::CapacityPriceLoopOptions;
using fap::catalog::PriceStepRule;
using fap::util::PreconditionError;

CapacityPriceLoopOptions fixed_options() {
  CapacityPriceLoopOptions options;
  options.gamma = 0.5;
  options.step_rule = PriceStepRule::kFixed;
  options.tolerance = 0.01;
  options.price_scale = 2.0;
  options.max_rounds = 8;
  return options;
}

TEST(TatonnementStep, ProjectsOntoNonNegativePrices) {
  std::vector<double> prices = {1.0, 0.1, 0.0};
  const std::vector<double> demand = {3.0, 1.0, 2.0};
  const std::vector<double> supply = {2.0, 2.0, 2.0};
  const std::vector<double> gamma = {0.5, 0.5, 0.5};
  fap::econ::tatonnement_step(prices, demand, supply, gamma);
  EXPECT_DOUBLE_EQ(prices[0], 1.5);  // 1.0 + 0.5·(3-2)
  EXPECT_DOUBLE_EQ(prices[1], 0.0);  // 0.1 + 0.5·(1-2) projected to 0
  EXPECT_DOUBLE_EQ(prices[2], 0.0);  // 0.0 + 0.5·(2-2)
  EXPECT_THROW(fap::econ::tatonnement_step(prices, {1.0}, supply, gamma),
               PreconditionError);
}

TEST(CapacityPriceLoop, StartsAtZeroPricesAndConvergesWithoutMovingThem) {
  CapacityPriceLoop loop({2.0, 2.0}, fixed_options());
  EXPECT_EQ(loop.prices(), std::vector<double>({0.0, 0.0}));
  // Demand within every budget: converged on the spot, prices untouched —
  // this is what keeps the slack-capacity catalog path identical to the
  // unconstrained single-file solves.
  EXPECT_TRUE(loop.update({1.5, 1.9}));
  EXPECT_TRUE(loop.converged());
  EXPECT_EQ(loop.prices(), std::vector<double>({0.0, 0.0}));
  EXPECT_EQ(loop.diagnostics().rounds, 0u);
  EXPECT_DOUBLE_EQ(loop.residual(), 0.0);
}

TEST(CapacityPriceLoop, RaisesOnlyOverloadedNodesPrices) {
  CapacityPriceLoop loop({2.0, 4.0}, fixed_options());
  // Node 0 overloaded by 50%, node 1 underfull.
  EXPECT_FALSE(loop.update({3.0, 2.0}));
  // γ_i = γ·scale/B_i; Δp_0 = 0.5·2.0/2.0·(3-2) = 0.5.
  EXPECT_DOUBLE_EQ(loop.prices()[0], 0.5);
  EXPECT_DOUBLE_EQ(loop.prices()[1], 0.0);
  EXPECT_DOUBLE_EQ(loop.residual(), 0.5);
  EXPECT_EQ(loop.diagnostics().rounds, 1u);
}

TEST(CapacityPriceLoop, NormalizedSpeedIsBudgetInvariant) {
  // The same RELATIVE overload must move prices identically regardless
  // of the absolute budget scale.
  CapacityPriceLoop small({1.0}, fixed_options());
  CapacityPriceLoop large({1000.0}, fixed_options());
  small.update({1.5});
  large.update({1500.0});
  EXPECT_DOUBLE_EQ(small.prices()[0], large.prices()[0]);
}

TEST(CapacityPriceLoop, AdaptiveRuleDampsOnNonImprovingRounds) {
  CapacityPriceLoopOptions options = fixed_options();
  options.step_rule = PriceStepRule::kAdaptive;
  options.decay = 0.5;
  CapacityPriceLoop loop({2.0}, options);
  loop.update({3.0});  // residual 0.5 (first round: counts as improving)
  EXPECT_DOUBLE_EQ(loop.diagnostics().gamma, 0.5);
  loop.update({3.2});  // residual 0.6 > 0.5: oscillation, γ halves
  EXPECT_DOUBLE_EQ(loop.diagnostics().gamma, 0.25);
  EXPECT_EQ(loop.diagnostics().oscillations, 1u);
  loop.update({2.5});  // improving again: γ holds
  EXPECT_DOUBLE_EQ(loop.diagnostics().gamma, 0.25);
  EXPECT_EQ(loop.diagnostics().oscillations, 1u);
  EXPECT_EQ(loop.diagnostics().residual_history.size(), 3u);
}

TEST(CapacityPriceLoop, FixedRuleNeverAdapts) {
  CapacityPriceLoop loop({2.0}, fixed_options());
  loop.update({3.0});
  loop.update({3.5});  // worse — still counted, but γ holds
  EXPECT_DOUBLE_EQ(loop.diagnostics().gamma, 0.5);
  EXPECT_EQ(loop.diagnostics().oscillations, 1u);
}

TEST(CapacityPriceLoop, WarmStartSeedsPricesAndZeroWarmEqualsCold) {
  // Explicit zeros must be bit-identical to the default cold start.
  CapacityPriceLoopOptions zeros = fixed_options();
  zeros.initial_prices = {0.0, 0.0};
  CapacityPriceLoop warm_zero({2.0, 4.0}, zeros);
  CapacityPriceLoop cold({2.0, 4.0}, fixed_options());
  EXPECT_EQ(warm_zero.prices(), cold.prices());
  warm_zero.update({3.0, 2.0});
  cold.update({3.0, 2.0});
  EXPECT_EQ(warm_zero.prices(), cold.prices());

  // A genuine warm start begins at the handed-in prices; a demand that
  // already clears at those prices converges without moving them.
  CapacityPriceLoopOptions warm_options = fixed_options();
  warm_options.initial_prices = {0.5, 0.0};
  CapacityPriceLoop warm({2.0, 4.0}, warm_options);
  EXPECT_EQ(warm.prices(), std::vector<double>({0.5, 0.0}));
  EXPECT_TRUE(warm.update({2.0, 3.0}));
  EXPECT_TRUE(warm.converged());
  EXPECT_EQ(warm.prices(), std::vector<double>({0.5, 0.0}));
  EXPECT_EQ(warm.diagnostics().rounds, 0u);
}

TEST(CapacityPriceLoop, WarmStartValidatesItsInputs) {
  CapacityPriceLoopOptions bad = fixed_options();
  bad.initial_prices = {0.5};  // two nodes, one price
  EXPECT_THROW(CapacityPriceLoop({1.0, 1.0}, bad), PreconditionError);
  bad = fixed_options();
  bad.initial_prices = {0.5, -0.1};
  EXPECT_THROW(CapacityPriceLoop({1.0, 1.0}, bad), PreconditionError);
}

TEST(CapacityPriceLoop, RefusesUpdatesAfterFinishing) {
  CapacityPriceLoopOptions options = fixed_options();
  options.max_rounds = 2;
  CapacityPriceLoop loop({1.0}, options);
  EXPECT_FALSE(loop.update({2.0}));
  EXPECT_TRUE(loop.active());
  EXPECT_FALSE(loop.update({2.0}));
  EXPECT_FALSE(loop.active());  // round budget spent
  EXPECT_THROW(loop.update({2.0}), PreconditionError);

  CapacityPriceLoop converged({1.0}, fixed_options());
  EXPECT_TRUE(converged.update({0.5}));
  EXPECT_THROW(converged.update({0.5}), PreconditionError);
}

TEST(CapacityPriceLoop, ValidatesItsInputs) {
  EXPECT_THROW(CapacityPriceLoop({}, fixed_options()), PreconditionError);
  EXPECT_THROW(CapacityPriceLoop({-1.0}, fixed_options()),
               PreconditionError);
  CapacityPriceLoopOptions bad = fixed_options();
  bad.gamma = 0.0;
  EXPECT_THROW(CapacityPriceLoop({1.0}, bad), PreconditionError);
  bad = fixed_options();
  bad.decay = 1.0;
  EXPECT_THROW(CapacityPriceLoop({1.0}, bad), PreconditionError);
  bad = fixed_options();
  bad.price_scale = 0.0;
  EXPECT_THROW(CapacityPriceLoop({1.0}, bad), PreconditionError);
  CapacityPriceLoop loop({1.0, 1.0}, fixed_options());
  EXPECT_THROW(loop.update({1.0}), PreconditionError);  // size mismatch
}

}  // namespace
