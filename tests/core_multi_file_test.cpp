// Tests for the Section 5.4 multi-file generalization, including the
// queue-sharing contention the paper highlights.
#include "core/multi_file.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

core::MultiFileProblem two_file_ring_problem() {
  const net::Topology ring = net::make_ring(4, 1.0);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(ring),
      {{0.125, 0.125, 0.125, 0.125},   // file 0: uniform, λ⁰ = 0.5
       {0.05, 0.05, 0.2, 0.2}},        // file 1: skewed, λ¹ = 0.5
      std::vector<double>(4, 1.5),
      /*k=*/1.0,
      fap::queueing::DelayModel()};
  return problem;
}

TEST(MultiFileModel, LayoutAndGroups) {
  const core::MultiFileModel model(two_file_ring_problem());
  EXPECT_EQ(model.node_count(), 4u);
  EXPECT_EQ(model.file_count(), 2u);
  EXPECT_EQ(model.dimension(), 8u);
  EXPECT_EQ(model.index(1, 2), 6u);
  const auto groups = model.constraint_groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].indices.size(), 4u);
  EXPECT_DOUBLE_EQ(groups[0].total, 1.0);
  EXPECT_DOUBLE_EQ(model.file_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(model.file_rate(1), 0.5);
}

TEST(MultiFileModel, SingleFileSpecialCaseMatchesSingleFileModel) {
  // With M = 1 the multi-file cost must equal the single-file cost.
  const net::Topology ring = net::make_ring(4, 1.0);
  core::MultiFileProblem mf{
      net::all_pairs_shortest_paths(ring),
      {{0.25, 0.25, 0.25, 0.25}},
      std::vector<double>(4, 1.5),
      1.0,
      fap::queueing::DelayModel()};
  const core::MultiFileModel multi(mf);
  const core::SingleFileModel single(core::make_paper_ring_problem());
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::vector<double> x = fap::testing::random_feasible(single, seed);
    EXPECT_NEAR(multi.cost(x), single.cost(x), 1e-12);
    const auto g1 = multi.gradient(x);
    const auto g2 = single.gradient(x);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(g1[i], g2[i], 1e-12);
    }
  }
}

TEST(MultiFileModel, ArrivalRateCombinesFiles) {
  const core::MultiFileModel model(two_file_ring_problem());
  std::vector<double> x(8, 0.0);
  x[model.index(0, 0)] = 1.0;  // file 0 entirely at node 0
  x[model.index(1, 0)] = 0.5;  // half of file 1 at node 0
  x[model.index(1, 1)] = 0.5;
  EXPECT_NEAR(model.node_arrival_rate(x, 0), 0.5 * 1.0 + 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(model.node_arrival_rate(x, 1), 0.25, 1e-12);
  EXPECT_NEAR(model.node_arrival_rate(x, 2), 0.0, 1e-12);
}

class MultiFileDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiFileDerivativeTest, GradientMatchesNumeric) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fap::util::Rng rng(seed);
  const net::Topology topology = net::make_random_metric(5, 2, rng);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(topology), {}, {}, rng.uniform(0.5, 2.0),
      fap::queueing::DelayModel()};
  const std::size_t files = 2 + seed % 2;
  double total = 0.0;
  for (std::size_t f = 0; f < files; ++f) {
    std::vector<double> lambda(5);
    for (double& rate : lambda) {
      rate = rng.uniform(0.02, 0.15);
      total += rate;
    }
    problem.per_file_lambda.push_back(std::move(lambda));
  }
  problem.mu.assign(5, total * 1.5);
  const core::MultiFileModel model(problem);
  const std::vector<double> x = fap::testing::random_feasible(model, seed + 9);
  const auto f = [&model](const std::vector<double>& v) {
    return model.cost(v);
  };
  const std::vector<double> numeric = fap::util::numeric_gradient(f, x);
  const std::vector<double> analytic = model.gradient(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-4 * (1.0 + std::fabs(numeric[i])))
        << "seed=" << seed << " i=" << i;
  }
  const std::vector<double> hess = model.second_derivative(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double numeric2 = fap::util::numeric_second_derivative(f, x, i);
    EXPECT_NEAR(hess[i], numeric2, 2e-2 * (1.0 + std::fabs(numeric2)))
        << "seed=" << seed << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, MultiFileDerivativeTest,
                         ::testing::Range(1, 9));

TEST(MultiFileModel, AllocatorConvergesToCentralizedOptimum) {
  const core::MultiFileModel model(two_file_ring_problem());
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-7;
  options.max_iterations = 200000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-5);
  // Per-file feasibility.
  double sum0 = 0.0;
  double sum1 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    sum0 += result.x[model.index(0, i)];
    sum1 += result.x[model.index(1, i)];
  }
  EXPECT_NEAR(sum0, 1.0, 1e-9);
  EXPECT_NEAR(sum1, 1.0, 1e-9);
}

TEST(MultiFileModel, QueueSharingPenalizesColocation) {
  // Contention: concentrating both files at one node must cost strictly
  // more than the sum of each file alone there — the "real-world resource
  // contention phenomenon" the paper's formulation captures.
  const core::MultiFileModel model(two_file_ring_problem());
  std::vector<double> both(8, 0.0);
  both[model.index(0, 0)] = 1.0;
  both[model.index(1, 0)] = 1.0;

  // Single-file costs, each alone at node 0 with the other file parked at
  // the far node 2.
  std::vector<double> only0(8, 0.0);
  only0[model.index(0, 0)] = 1.0;
  only0[model.index(1, 2)] = 1.0;
  std::vector<double> only1(8, 0.0);
  only1[model.index(1, 0)] = 1.0;
  only1[model.index(0, 2)] = 1.0;

  // Delay portion at node 0 when colocated exceeds the sum of the delay
  // portions when separated (superadditivity of a T(a)).
  const double colocated_arrival = model.node_arrival_rate(both, 0);
  EXPECT_NEAR(colocated_arrival, 1.0, 1e-12);
  const double t_colocated =
      colocated_arrival *
      model.problem().delay.sojourn(colocated_arrival, 1.5);
  const double t_separate =
      2.0 * (0.5 * model.problem().delay.sojourn(0.5, 1.5));
  EXPECT_GT(t_colocated, t_separate);
}

TEST(MultiFileModel, OptimalAllocationSeparatesHotFiles) {
  // Two identical uniformly-accessed files on a symmetric ring: by
  // symmetry + contention, the optimum cannot stack both files on the
  // same node harder than on others.
  const net::Topology ring = net::make_ring(4, 1.0);
  core::MultiFileProblem problem{
      net::all_pairs_shortest_paths(ring),
      {{0.1, 0.1, 0.1, 0.1}, {0.1, 0.1, 0.1, 0.1}},
      std::vector<double>(4, 1.5),
      1.0,
      fap::queueing::DelayModel()};
  const core::MultiFileModel model(problem);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  // Symmetric optimum: every variable = 1/4.
  for (const double xi : reference.x) {
    EXPECT_NEAR(xi, 0.25, 1e-4);
  }
}

TEST(MultiFileModel, RejectsInvalidConstruction) {
  core::MultiFileProblem problem = two_file_ring_problem();
  problem.per_file_lambda.clear();
  EXPECT_THROW(core::MultiFileModel{problem}, fap::util::PreconditionError);

  problem = two_file_ring_problem();
  problem.per_file_lambda[0] = {0.1, 0.1};  // wrong size
  EXPECT_THROW(core::MultiFileModel{problem}, fap::util::PreconditionError);

  problem = two_file_ring_problem();
  problem.mu.assign(4, 0.9);  // below Σλ = 1.0 with pure M/M/1
  EXPECT_THROW(core::MultiFileModel{problem}, fap::util::PreconditionError);
  problem.delay = fap::queueing::DelayModel::mm1(0.9);
  EXPECT_NO_THROW(core::MultiFileModel{problem});
}

}  // namespace
