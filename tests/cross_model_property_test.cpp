// Cross-cutting property sweeps: every allocator against every compatible
// objective, across queueing disciplines — the library's invariants must
// hold for any combination a user can legally assemble.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/newton_allocator.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "core/volume_model.hpp"
#include "test_helpers.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace queueing = fap::queueing;

// --- Allocator x delay-discipline sweep -----------------------------------

struct DisciplineCase {
  const char* name;
  queueing::Discipline discipline;
  double scv;
};

class DisciplineSweepTest : public ::testing::TestWithParam<DisciplineCase> {
};

TEST_P(DisciplineSweepTest, AllocatorInvariantsHoldForEveryQueueModel) {
  const DisciplineCase c = GetParam();
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.lambda = {0.4, 0.3, 0.2, 0.1};
  problem.delay = queueing::DelayModel(c.discipline, c.scv);
  const core::SingleFileModel model(std::move(problem));

  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-6;
  options.record_trace = true;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.7, 0.1, 0.1, 0.1});
  ASSERT_TRUE(result.converged) << c.name;
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-12)
        << c.name << " iteration " << t;
  }
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-5 * (1.0 + reference.cost))
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Disciplines, DisciplineSweepTest,
    ::testing::Values(DisciplineCase{"mm1", queueing::Discipline::kMM1, 1.0},
                      DisciplineCase{"md1", queueing::Discipline::kMD1, 0.0},
                      DisciplineCase{"mg1_low", queueing::Discipline::kMG1,
                                     0.4},
                      DisciplineCase{"mg1_high", queueing::Discipline::kMG1,
                                     2.5}),
    [](const auto& info) { return std::string(info.param.name); });

// --- Newton allocator on every objective -----------------------------------

TEST(CrossModel, NewtonOnVolumeModelMatchesProjectedGradient) {
  const core::VolumeTransferModel model(core::make_paper_ring_problem(),
                                        /*base_volume=*/1.0,
                                        /*volume_factor=*/2.0);
  core::NewtonAllocatorOptions options;
  options.alpha = 0.5;
  options.epsilon = 1e-7;
  options.max_iterations = 100000;
  const core::NewtonAllocator newton(model, options);
  const core::AllocationResult result = newton.run({0.7, 0.1, 0.1, 0.1});
  ASSERT_TRUE(result.converged);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-5);
}

TEST(CrossModel, NewtonOnDelayDominatedRingConverges) {
  // The unit-cost ring's objective is smooth enough near the optimum for
  // the curvature-weighted update; it must reach the uniform optimum.
  const core::RingModel model{
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0})};
  core::NewtonAllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 5e-3;
  options.max_iterations = 5000;
  const core::NewtonAllocator newton(model, options);
  const core::AllocationResult result =
      newton.run({0.9, 0.5, 0.35, 0.25});
  EXPECT_LT(model.cost(result.x), model.cost({0.9, 0.5, 0.35, 0.25}));
  EXPECT_NEAR(fap::util::sum(result.x), 2.0, 1e-9);
  for (const double xi : result.x) {
    EXPECT_GE(xi, 0.0);
  }
}

TEST(CrossModel, DynamicStepOnVolumeModel) {
  const core::VolumeTransferModel model(core::make_paper_ring_problem(),
                                        0.5, 4.0);
  core::AllocatorOptions options;
  options.step_rule = core::StepRule::kDynamic;
  options.epsilon = 1e-7;
  options.record_trace = true;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({1.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(result.converged);
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-12);
  }
}

// --- Random cross-product stress -------------------------------------------

class RandomStressTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomStressTest, BothAllocatorsAgreeOnRandomInstances) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 10));
  const std::vector<double> start =
      fap::testing::random_feasible(model, seed + 77);

  core::AllocatorOptions first;
  first.alpha = 0.1;
  first.epsilon = 1e-7;
  first.max_iterations = 300000;
  const auto gradient_result =
      core::ResourceDirectedAllocator(model, first).run(start);

  core::NewtonAllocatorOptions second;
  second.alpha = 0.5;
  second.epsilon = 1e-7;
  second.max_iterations = 300000;
  const auto newton_result = core::NewtonAllocator(model, second).run(start);

  ASSERT_TRUE(gradient_result.converged) << seed;
  ASSERT_TRUE(newton_result.converged) << seed;
  EXPECT_NEAR(gradient_result.cost, newton_result.cost,
              1e-4 * (1.0 + std::fabs(gradient_result.cost)))
      << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStressTest, ::testing::Range(100, 112));

}  // namespace
