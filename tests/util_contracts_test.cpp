#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using fap::util::InvariantError;
using fap::util::PreconditionError;

int checked_divide(int a, int b) {
  FAP_EXPECTS(b != 0, "divisor must be non-zero");
  const int q = a / b;
  FAP_ENSURES(q * b + a % b == a, "division identity");
  return q;
}

TEST(Contracts, ExpectsPassesOnValidInput) {
  EXPECT_EQ(checked_divide(10, 3), 3);
}

TEST(Contracts, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(checked_divide(1, 0), PreconditionError);
}

TEST(Contracts, PreconditionIsAnInvalidArgument) {
  // Callers catching std::invalid_argument must see contract violations.
  EXPECT_THROW(checked_divide(1, 0), std::invalid_argument);
}

TEST(Contracts, MessageContainsExpressionLocationAndText) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected a throw";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("b != 0"), std::string::npos);
    EXPECT_NE(what.find("util_contracts_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("divisor must be non-zero"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrowsInvariantError) {
  const auto broken = [] {
    FAP_ENSURES(1 == 2, "math is broken");
  };
  EXPECT_THROW(broken(), InvariantError);
  EXPECT_THROW(broken(), std::logic_error);
  try {
    broken();
  } catch (const InvariantError& error) {
    EXPECT_NE(std::string(error.what()).find("invariant"),
              std::string::npos);
  }
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto condition = [&evaluations] {
    ++evaluations;
    return true;
  };
  FAP_EXPECTS(condition(), "side-effect counter");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
