#include <gtest/gtest.h>

#include <cmath>

#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "net/virtual_ring.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace net = fap::net;
using fap::util::PreconditionError;

TEST(Topology, EdgeValidation) {
  net::Topology topology(3);
  topology.add_edge(0, 1, 2.0);
  EXPECT_TRUE(topology.has_edge(0, 1));
  EXPECT_TRUE(topology.has_edge(1, 0));
  EXPECT_FALSE(topology.has_edge(0, 2));
  EXPECT_THROW(topology.add_edge(0, 0, 1.0), PreconditionError);  // self-loop
  EXPECT_THROW(topology.add_edge(0, 1, 1.0), PreconditionError);  // duplicate
  EXPECT_THROW(topology.add_edge(0, 3, 1.0), PreconditionError);  // range
  EXPECT_THROW(topology.add_edge(0, 2, 0.0), PreconditionError);  // zero cost
}

TEST(Topology, NeighborsRecordCosts) {
  net::Topology topology(3);
  topology.add_edge(0, 1, 2.5);
  topology.add_edge(0, 2, 1.5);
  const auto& neighbors = topology.neighbors(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].node, 1u);
  EXPECT_DOUBLE_EQ(neighbors[0].cost, 2.5);
}

TEST(Topology, ConnectivityDetection) {
  net::Topology topology(4);
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(2, 3, 1.0);
  EXPECT_FALSE(topology.connected());
  topology.add_edge(1, 2, 1.0);
  EXPECT_TRUE(topology.connected());
}

TEST(ShortestPaths, RingDistances) {
  // 4-ring with unit costs: opposite nodes at distance 2, adjacent at 1.
  const net::Topology ring = net::make_ring(4, 1.0);
  const net::CostMatrix matrix = net::all_pairs_shortest_paths(ring);
  EXPECT_DOUBLE_EQ(matrix.cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(matrix.cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(matrix.cost(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(matrix.cost(0, 3), 1.0);
}

TEST(ShortestPaths, PrefersCheapDetour) {
  // Direct edge 0-1 costs 10; the detour through 2 costs 3.
  net::Topology topology(3);
  topology.add_edge(0, 1, 10.0);
  topology.add_edge(0, 2, 1.0);
  topology.add_edge(2, 1, 2.0);
  const net::CostMatrix matrix = net::all_pairs_shortest_paths(topology);
  EXPECT_DOUBLE_EQ(matrix.cost(0, 1), 3.0);
}

TEST(ShortestPaths, SymmetricForUndirectedGraphs) {
  fap::util::Rng rng(31);
  const net::Topology topology = net::make_random_metric(12, 3, rng);
  const net::CostMatrix matrix = net::all_pairs_shortest_paths(topology);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(matrix.cost(i, j), matrix.cost(j, i));
    }
  }
}

TEST(ShortestPaths, TriangleInequality) {
  fap::util::Rng rng(37);
  const net::Topology topology = net::make_erdos_renyi(10, 0.4, 0.5, 3.0, rng);
  const net::CostMatrix matrix = net::all_pairs_shortest_paths(topology);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      for (std::size_t k = 0; k < 10; ++k) {
        EXPECT_LE(matrix.cost(i, j),
                  matrix.cost(i, k) + matrix.cost(k, j) + 1e-12);
      }
    }
  }
}

TEST(ShortestPaths, RejectsDisconnectedTopology) {
  net::Topology topology(4);
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(2, 3, 1.0);
  EXPECT_THROW(net::all_pairs_shortest_paths(topology), PreconditionError);
}

TEST(ShortestPaths, NextHopsFollowLeastCostRoutes) {
  net::Topology topology(4);  // line 0-1-2-3
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(1, 2, 1.0);
  topology.add_edge(2, 3, 1.0);
  const std::vector<net::NodeId> hops = net::dijkstra_next_hops(topology, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);
  EXPECT_EQ(hops[3], 1u);
}

struct GeneratorCase {
  const char* name;
  std::size_t nodes;
  std::size_t expected_edges;  // 0 means "do not check"
};

class GeneratorTest : public ::testing::TestWithParam<GeneratorCase> {};

net::Topology build(const GeneratorCase& c, fap::util::Rng& rng) {
  const std::string name = c.name;
  if (name == "ring") return net::make_ring(c.nodes, 1.0);
  if (name == "complete") return net::make_complete(c.nodes, 1.0);
  if (name == "star") return net::make_star(c.nodes, 1.0);
  if (name == "line") return net::make_line(c.nodes, 1.0);
  if (name == "grid") return net::make_grid(3, c.nodes / 3, 1.0);
  if (name == "erdos") return net::make_erdos_renyi(c.nodes, 0.3, 1.0, 2.0, rng);
  return net::make_random_metric(c.nodes, 2, rng);
}

TEST_P(GeneratorTest, ProducesConnectedTopologyOfRightSize) {
  fap::util::Rng rng(41);
  const GeneratorCase c = GetParam();
  const net::Topology topology = build(c, rng);
  if (std::string(c.name) == "grid") {
    EXPECT_EQ(topology.node_count(), 3 * (c.nodes / 3));
  } else {
    EXPECT_EQ(topology.node_count(), c.nodes);
  }
  EXPECT_TRUE(topology.connected());
  if (c.expected_edges > 0) {
    EXPECT_EQ(topology.edge_count(), c.expected_edges);
  }
  for (const net::Edge& edge : topology.edges()) {
    EXPECT_GT(edge.cost, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(GeneratorCase{"ring", 6, 6},
                      GeneratorCase{"complete", 6, 15},
                      GeneratorCase{"star", 6, 5},
                      GeneratorCase{"line", 6, 5},
                      GeneratorCase{"grid", 9, 12},   // 3x3 grid
                      GeneratorCase{"erdos", 12, 0},
                      GeneratorCase{"metric", 15, 0}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return std::string(info.param.name);
    });

TEST(Generators, RingWithPerLinkCosts) {
  const net::Topology ring = net::make_ring(4, {4.0, 1.0, 1.0, 1.0});
  EXPECT_TRUE(ring.has_edge(0, 1));
  const auto& neighbors = ring.neighbors(0);
  // Node 0 connects to 1 (cost 4, link 0) and 3 (cost 1, link 3).
  double cost01 = 0.0;
  double cost03 = 0.0;
  for (const auto& nb : neighbors) {
    if (nb.node == 1) cost01 = nb.cost;
    if (nb.node == 3) cost03 = nb.cost;
  }
  EXPECT_DOUBLE_EQ(cost01, 4.0);
  EXPECT_DOUBLE_EQ(cost03, 1.0);
}

TEST(Generators, ErdosRenyiSparseFallsBackToSpanningChain) {
  fap::util::Rng rng(43);
  // p = 0 can never connect by luck; generator must still return a
  // connected topology via the spanning-chain fallback.
  const net::Topology topology =
      net::make_erdos_renyi(8, 0.0, 1.0, 2.0, rng, /*max_attempts=*/3);
  EXPECT_TRUE(topology.connected());
  EXPECT_EQ(topology.edge_count(), 7u);
}

TEST(VirtualRing, ForwardDistancesWrapAround) {
  const net::VirtualRing ring(std::vector<double>{4.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(ring.forward_distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ring.forward_distance(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ring.forward_distance(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(ring.forward_distance(3, 0), 1.0);   // wraps
  EXPECT_DOUBLE_EQ(ring.forward_distance(1, 0), 3.0);   // 1->2->3->0
  EXPECT_EQ(ring.forward_hops(3, 1), 2u);
  EXPECT_EQ(ring.advance(3, 2), 1u);
}

TEST(VirtualRing, FromOrderUsesLeastCostRoutes) {
  // Star with hub 0: any two spokes are 2 apart through the hub.
  const net::Topology star = net::make_star(4, 1.0);
  const net::VirtualRing ring =
      net::VirtualRing::from_order(star, {1, 2, 3, 0});
  EXPECT_DOUBLE_EQ(ring.forward_cost(0), 2.0);  // spoke 1 -> spoke 2
  EXPECT_DOUBLE_EQ(ring.forward_cost(2), 1.0);  // spoke 3 -> hub 0
}

TEST(VirtualRing, FromOrderRejectsNonPermutation) {
  const net::Topology ring = net::make_ring(4, 1.0);
  EXPECT_THROW(net::VirtualRing::from_order(ring, {0, 1, 2, 2}),
               PreconditionError);
  EXPECT_THROW(net::VirtualRing::from_order(ring, {0, 1, 2}),
               PreconditionError);
}

}  // namespace
