// Tests for the exact search baselines: branch-and-bound integral
// multi-file placement and Casey's variable-copy-count model.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/branch_and_bound.hpp"
#include "baselines/casey.hpp"
#include "baselines/integral.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace {

namespace baselines = fap::baselines;
namespace core = fap::core;
namespace net = fap::net;

core::MultiFileProblem random_multi_problem(std::uint64_t seed,
                                            std::size_t nodes,
                                            std::size_t files) {
  fap::util::Rng rng(seed);
  const net::Topology topology = net::make_random_metric(nodes, 2, rng);
  core::MultiFileProblem problem{net::all_pairs_shortest_paths(topology),
                                 {},
                                 {},
                                 rng.uniform(0.5, 2.0),
                                 fap::queueing::DelayModel()};
  double total = 0.0;
  for (std::size_t f = 0; f < files; ++f) {
    std::vector<double> lambda(nodes, 0.0);
    for (double& rate : lambda) {
      rate = rng.uniform(0.01, 0.08);
      total += rate;
    }
    problem.per_file_lambda.push_back(std::move(lambda));
  }
  problem.mu.assign(nodes, total * 1.5);
  return problem;
}

TEST(BranchAndBound, MatchesBruteForceOnSmallInstances) {
  for (const std::uint64_t seed : {1u, 3u, 8u, 21u}) {
    const core::MultiFileModel model(
        random_multi_problem(seed, 5, 3 + seed % 3));
    const baselines::IntegralResult brute =
        baselines::best_integral_multi(model);
    const baselines::BranchAndBoundResult bnb =
        baselines::best_integral_multi_bnb(model);
    EXPECT_NEAR(bnb.best.cost, brute.cost, 1e-9) << "seed " << seed;
    EXPECT_EQ(bnb.best.hosts, brute.hosts) << "seed " << seed;
  }
}

TEST(BranchAndBound, PruningCutsTheSearchSpace) {
  const core::MultiFileModel model(random_multi_problem(7, 8, 6));
  const baselines::BranchAndBoundResult result =
      baselines::best_integral_multi_bnb(model);
  // Full tree would have Σ 8^d ≈ 300k nodes; pruning must do much better.
  EXPECT_LT(result.stats.nodes_explored, 50000u);
  EXPECT_GT(result.stats.pruned, 0u);
}

TEST(BranchAndBound, SolvesInstancesBeyondEnumeration) {
  // 10 files over 10 nodes = 10^10 assignments: enumeration refuses, the
  // bound makes it tractable, and the result is a valid assignment no
  // worse than a strong heuristic (every file at its standalone-best
  // node).
  const core::MultiFileModel model(random_multi_problem(11, 10, 10));
  EXPECT_THROW(baselines::best_integral_multi(model),
               fap::util::PreconditionError);
  const baselines::BranchAndBoundResult result =
      baselines::best_integral_multi_bnb(model);
  ASSERT_EQ(result.best.hosts.size(), 10u);
  EXPECT_NEAR(model.cost(result.best.x), result.best.cost, 1e-9);

  std::vector<double> heuristic(model.dimension(), 0.0);
  for (std::size_t f = 0; f < 10; ++f) {
    std::size_t best_node = 0;
    double best = 1e300;
    for (std::size_t i = 0; i < 10; ++i) {
      const double standalone =
          model.access_cost(f, i) +
          model.problem().k *
              model.problem().delay.sojourn(model.file_rate(f),
                                            model.problem().mu[i]);
      if (standalone < best) {
        best = standalone;
        best_node = i;
      }
    }
    heuristic[model.index(f, best_node)] = 1.0;
  }
  EXPECT_LE(result.best.cost, model.cost(heuristic) + 1e-9);
}

TEST(BranchAndBound, RespectsSearchBudget) {
  const core::MultiFileModel model(random_multi_problem(13, 9, 8));
  EXPECT_THROW(baselines::best_integral_multi_bnb(model, /*node_cap=*/10),
               fap::util::InvariantError);
}

// --- Casey -------------------------------------------------------------------

baselines::CaseyProblem ring_casey(double update_scale, double storage) {
  const net::Topology ring = net::make_ring(6, 1.0);
  baselines::CaseyProblem problem{net::all_pairs_shortest_paths(ring),
                                  std::vector<double>(6, 1.0),
                                  std::vector<double>(6, update_scale),
                                  storage};
  return problem;
}

TEST(Casey, CostHandComputed) {
  // 6-ring, copy at node 0 only: queries pay ring distances
  // (0+1+2+3+2+1) = 9; updates the same; storage σ.
  const baselines::CaseyProblem problem = ring_casey(0.5, 2.0);
  std::vector<bool> hosts(6, false);
  hosts[0] = true;
  EXPECT_NEAR(baselines::casey_cost(problem, hosts),
              9.0 + 0.5 * 9.0 + 2.0, 1e-12);
}

TEST(Casey, NoUpdatesAndFreeStorageMeansFullReplication) {
  const baselines::CaseyProblem problem = ring_casey(0.0, 0.0);
  const baselines::CaseyResult best = baselines::casey_optimal(problem);
  EXPECT_EQ(best.copies, 6u);  // a copy everywhere: queries cost zero
  EXPECT_NEAR(best.cost, 0.0, 1e-12);
}

TEST(Casey, HeavyUpdatesCollapseToASingleCopy) {
  const baselines::CaseyProblem problem = ring_casey(10.0, 0.0);
  const baselines::CaseyResult best = baselines::casey_optimal(problem);
  EXPECT_EQ(best.copies, 1u);
}

TEST(Casey, CopyCountDecreasesWithUpdateTraffic) {
  std::size_t previous = 7;
  for (const double updates : {0.0, 0.1, 0.5, 2.0, 10.0}) {
    const baselines::CaseyResult best =
        baselines::casey_optimal(ring_casey(updates, 0.2));
    EXPECT_LE(best.copies, previous) << "updates " << updates;
    previous = best.copies;
  }
}

TEST(Casey, LocalSearchMatchesExhaustiveOnRandomInstances) {
  fap::util::Rng rng(31);
  int matched = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    const net::Topology topology = net::make_random_metric(8, 2, rng);
    baselines::CaseyProblem problem{
        net::all_pairs_shortest_paths(topology),
        std::vector<double>(8, 0.0), std::vector<double>(8, 0.0),
        rng.uniform(0.0, 1.0)};
    for (std::size_t j = 0; j < 8; ++j) {
      problem.query_rate[j] = rng.uniform(0.1, 1.0);
      problem.update_rate[j] = rng.uniform(0.0, 0.4);
    }
    const baselines::CaseyResult exact = baselines::casey_optimal(problem);
    const baselines::CaseyResult local =
        baselines::casey_local_search(problem);
    EXPECT_LE(exact.cost, local.cost + 1e-9);
    EXPECT_LE(local.cost, 1.05 * exact.cost) << "trial " << trial;
    if (std::fabs(local.cost - exact.cost) < 1e-9) {
      ++matched;
    }
  }
  // The add/drop/swap neighborhood finds the exact optimum most of the
  // time on these instances.
  EXPECT_GE(matched, kTrials / 2);
}

TEST(Casey, RejectsBadInput) {
  const baselines::CaseyProblem problem = ring_casey(0.5, 1.0);
  EXPECT_THROW(baselines::casey_cost(problem, std::vector<bool>(6, false)),
               fap::util::PreconditionError);
  EXPECT_THROW(baselines::casey_cost(problem, std::vector<bool>(4, true)),
               fap::util::PreconditionError);
  baselines::CaseyProblem bad = problem;
  bad.storage_cost = -1.0;
  EXPECT_THROW(baselines::casey_optimal(bad), fap::util::PreconditionError);
}

}  // namespace
