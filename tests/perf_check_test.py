"""Unit tests for scripts/perf_check.py.

Focus: the missing-benchmark policy. A benchmark present in the baseline
but absent from the fresh capture must HARD-FAIL (even under
--warn-only) unless explicitly waived with --allow-missing — a silently
vanished benchmark is a coverage regression, not noise.

Run directly (python3 tests/perf_check_test.py) or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, "scripts", "perf_check.py")


def bench_json(times_ns):
    """google-benchmark JSON with one iteration row per {name: ns}."""
    return {
        "benchmarks": [
            {"name": name, "run_name": name, "run_type": "iteration",
             "real_time": ns, "time_unit": "ns"}
            for name, ns in times_ns.items()
        ]
    }


class PerfCheckTest(unittest.TestCase):
    def run_check(self, baseline, current, *extra_args):
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            current_path = os.path.join(tmp, "current.json")
            with open(baseline_path, "w", encoding="utf-8") as fh:
                json.dump(bench_json(baseline), fh)
            with open(current_path, "w", encoding="utf-8") as fh:
                json.dump(bench_json(current), fh)
            proc = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", baseline_path,
                 "--current", current_path, *extra_args],
                capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout

    def test_matching_benchmarks_pass(self):
        code, out = self.run_check({"BM_A": 100.0}, {"BM_A": 101.0})
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_regression_beyond_hard_fail_fails(self):
        code, out = self.run_check({"BM_A": 100.0}, {"BM_A": 500.0})
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)

    def test_warn_only_downgrades_tolerance_breach(self):
        code, out = self.run_check({"BM_A": 100.0}, {"BM_A": 200.0},
                                   "--warn-only")
        self.assertEqual(code, 0, out)
        self.assertIn("WARN", out)

    def test_missing_baseline_benchmark_hard_fails(self):
        code, out = self.run_check({"BM_A": 100.0, "BM_Gone": 50.0},
                                   {"BM_A": 100.0})
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING: BM_Gone", out)
        self.assertIn("FAIL", out)

    def test_missing_benchmark_fails_even_with_warn_only(self):
        code, out = self.run_check({"BM_A": 100.0, "BM_Gone": 50.0},
                                   {"BM_A": 100.0}, "--warn-only")
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING: BM_Gone", out)

    def test_allow_missing_waives_the_failure(self):
        code, out = self.run_check({"BM_A": 100.0, "BM_Gone": 50.0},
                                   {"BM_A": 100.0}, "--allow-missing")
        self.assertEqual(code, 0, out)
        self.assertIn("waived", out)

    def test_new_benchmark_in_current_run_is_a_note_not_a_failure(self):
        code, out = self.run_check({"BM_A": 100.0},
                                   {"BM_A": 100.0, "BM_New": 10.0})
        self.assertEqual(code, 0, out)
        self.assertIn("only in current run", out)

    def test_median_aggregates_preferred_over_iterations(self):
        baseline = bench_json({"BM_A": 100.0})
        current = bench_json({"BM_A": 900.0})  # noisy iteration row...
        current["benchmarks"].append(
            {"name": "BM_A_median", "run_name": "BM_A",
             "run_type": "aggregate", "aggregate_name": "median",
             "real_time": 102.0, "time_unit": "ns"})
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            current_path = os.path.join(tmp, "current.json")
            with open(baseline_path, "w", encoding="utf-8") as fh:
                json.dump(baseline, fh)
            with open(current_path, "w", encoding="utf-8") as fh:
                json.dump(current, fh)
            proc = subprocess.run(
                [sys.executable, SCRIPT, "--baseline", baseline_path,
                 "--current", current_path],
                capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
