// Validation of the discrete-event simulator against closed-form queueing
// theory, and of the analytic cost model (Eq. 1) against the simulator —
// experiment A4's foundations.
#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "queueing/delay.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

// One isolated M/M/1 queue: a single node serving its own accesses.
sim::DesConfig single_queue_config(double lambda, double mu) {
  sim::DesConfig config;
  config.lambda = {lambda};
  config.mu = {mu};
  config.routing = {{1.0}};
  config.comm_cost = {{0.0}};
  config.measured_accesses = 200000;
  config.warmup_time = 500.0;
  config.seed = 42;
  return config;
}

TEST(Des, MM1SojournMatchesTheory) {
  const double lambda = 0.75;
  const double mu = 1.5;
  const sim::DesResult result = sim::run_des(single_queue_config(lambda, mu));
  const double theory = fap::queueing::mm1_sojourn_time(lambda, mu);
  // Within a generous multiple of the CI (queue sojourns are correlated,
  // so the iid CI understates the error).
  EXPECT_NEAR(result.sojourn.mean(), theory,
              0.05 * theory + 5.0 * result.sojourn.ci95_halfwidth());
}

TEST(Des, MM1UtilizationMatchesRho) {
  const double lambda = 0.9;
  const double mu = 1.5;
  const sim::DesResult result = sim::run_des(single_queue_config(lambda, mu));
  EXPECT_NEAR(result.node[0].utilization, lambda / mu, 0.02);
  EXPECT_NEAR(result.node[0].observed_arrival_rate, lambda, 0.05);
}

TEST(Des, MD1WaitingIsHalfOfMM1) {
  const double lambda = 0.9;
  const double mu = 1.5;
  sim::DesConfig config = single_queue_config(lambda, mu);
  config.service = sim::ServiceDistribution::kDeterministic;
  const sim::DesResult result = sim::run_des(config);
  const fap::queueing::DelayModel md1 = fap::queueing::DelayModel::md1();
  const double theory = md1.sojourn(lambda, mu);
  EXPECT_NEAR(result.sojourn.mean(), theory, 0.05 * theory);
}

TEST(Des, GammaServiceMatchesPollaczekKhinchine) {
  const double lambda = 0.7;
  const double mu = 1.5;
  const double scv = 0.5;
  sim::DesConfig config = single_queue_config(lambda, mu);
  config.service = sim::ServiceDistribution::kGamma;
  config.service_scv = scv;
  const sim::DesResult result = sim::run_des(config);
  const fap::queueing::DelayModel mg1 = fap::queueing::DelayModel::mg1(scv);
  const double theory = mg1.sojourn(lambda, mu);
  EXPECT_NEAR(result.sojourn.mean(), theory, 0.05 * theory);
}

TEST(Des, DeterministicAcrossRunsWithSameSeed) {
  const sim::DesConfig config = single_queue_config(0.5, 1.5);
  const sim::DesResult a = sim::run_des(config);
  const sim::DesResult b = sim::run_des(config);
  EXPECT_DOUBLE_EQ(a.sojourn.mean(), b.sojourn.mean());
  EXPECT_DOUBLE_EQ(a.measured_cost, b.measured_cost);
}

TEST(Des, SeedChangesTheSamplePath) {
  sim::DesConfig config = single_queue_config(0.5, 1.5);
  const sim::DesResult a = sim::run_des(config);
  config.seed = 43;
  const sim::DesResult b = sim::run_des(config);
  EXPECT_NE(a.sojourn.mean(), b.sojourn.mean());
}

TEST(Des, MeasuredCostMatchesAnalyticModelAtSeveralAllocations) {
  // The headline validation: Eq. 1 predicts the measured per-access cost
  // of the running system.
  const core::SingleFileModel model(core::make_paper_ring_problem());
  for (const std::vector<double>& x :
       {std::vector<double>{0.25, 0.25, 0.25, 0.25},
        std::vector<double>{0.8, 0.1, 0.1, 0.0},
        std::vector<double>{0.0, 0.0, 0.0, 1.0}}) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 150000;
    config.seed = 7;
    const sim::DesResult result = sim::run_des(config);
    const double analytic = model.cost(x);
    EXPECT_NEAR(result.measured_cost, analytic, 0.05 * analytic)
        << "allocation (" << x[0] << "," << x[1] << "," << x[2] << "," << x[3]
        << ")";
  }
}

TEST(Des, PerNodeArrivalRatesFollowTheAllocation) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> x{0.5, 0.3, 0.2, 0.0};
  sim::DesConfig config = sim::des_config_for(model, x);
  config.measured_accesses = 150000;
  const sim::DesResult result = sim::run_des(config);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.node[i].observed_arrival_rate, x[i] * 1.0, 0.03)
        << "node " << i;
  }
}

TEST(Des, CommunicationCostMatchesWeightedShortestPaths) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> x{0.25, 0.25, 0.25, 0.25};
  sim::DesConfig config = sim::des_config_for(model, x);
  config.measured_accesses = 100000;
  const sim::DesResult result = sim::run_des(config);
  // Expected comm per access: Σ_i x_i C_i = 1 on the symmetric ring.
  EXPECT_NEAR(result.comm_cost.mean(), 1.0, 0.02);
}

TEST(Des, RingRoutingMatchesRingModelCost) {
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const std::vector<double> x{0.5, 0.5, 0.5, 0.5};
  sim::DesConfig config = sim::des_config_for(model, x);
  config.measured_accesses = 150000;
  config.seed = 11;
  const sim::DesResult result = sim::run_des(config);
  // RingModel::cost is a rate; per access = cost / λ_total (λ_total = 1).
  const double analytic_per_access = model.cost(x) / 1.0;
  EXPECT_NEAR(result.measured_cost, analytic_per_access,
              0.05 * analytic_per_access);
}

TEST(Des, RingArrivalRatesMatchModel) {
  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const std::vector<double> x{0.9, 0.5, 0.35, 0.25};
  sim::DesConfig config = sim::des_config_for(model, x);
  config.measured_accesses = 150000;
  const sim::DesResult result = sim::run_des(config);
  const std::vector<double> analytic = model.arrival_rates(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.node[i].observed_arrival_rate, analytic[i], 0.05)
        << "node " << i;
  }
}

TEST(Des, SojournHistogramLooksExponentialish) {
  // For an M/M/1 queue the sojourn time is exponential with rate μ - λ;
  // check the median against theory.
  const double lambda = 0.5;
  const double mu = 1.5;
  const sim::DesResult result = sim::run_des(single_queue_config(lambda, mu));
  const double median_theory = std::log(2.0) / (mu - lambda);
  EXPECT_NEAR(result.sojourn_histogram.quantile(0.5), median_theory,
              0.1 * median_theory);
}

TEST(Des, RejectsMalformedConfigs) {
  sim::DesConfig config = single_queue_config(0.5, 1.5);
  config.routing = {{0.7}};  // row does not sum to 1
  EXPECT_THROW(sim::run_des(config), fap::util::PreconditionError);
  config = single_queue_config(0.5, 1.5);
  config.mu = {0.0};
  EXPECT_THROW(sim::run_des(config), fap::util::PreconditionError);
  config = single_queue_config(0.5, 1.5);
  config.comm_cost = {};
  EXPECT_THROW(sim::run_des(config), fap::util::PreconditionError);
}

}  // namespace
