// Tests for the Section 5.2 algorithm: the four formally proven properties
// (optimality at convergence, feasibility, monotonicity, convergence) plus
// the reproduction of the paper's iteration counts, as unit and
// parameterized property tests.
#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/projected_gradient.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
using fap::util::PreconditionError;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

core::AllocatorOptions paper_options(double alpha) {
  core::AllocatorOptions options;
  options.alpha = alpha;
  options.epsilon = 1e-3;
  options.record_trace = true;
  return options;
}

// --- Reproduction of the paper's Figure 3 iteration counts -------------

struct Figure3Case {
  double alpha;
  std::size_t paper_iterations;
};

class Figure3Test : public ::testing::TestWithParam<Figure3Case> {};

TEST_P(Figure3Test, IterationCountMatchesPaperWithinTolerance) {
  const Figure3Case c = GetParam();
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model,
                                                  paper_options(c.alpha));
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  // Paper: 4 / 10 / 20 / 51 iterations. Allow ±2 for the ε bookkeeping
  // difference between "iterations plotted" and "reallocation steps".
  EXPECT_NEAR(static_cast<double>(result.iterations),
              static_cast<double>(c.paper_iterations), 2.0)
      << "alpha=" << c.alpha;
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 2e-3);
  }
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, Figure3Test,
                         ::testing::Values(Figure3Case{0.67, 4},
                                           Figure3Case{0.30, 10},
                                           Figure3Case{0.19, 20},
                                           Figure3Case{0.08, 51}),
                         [](const auto& info) {
                           return "alpha_" +
                                  std::to_string(static_cast<int>(
                                      info.param.alpha * 100));
                         });

// --- Theorem 1: feasibility at every iteration ---------------------------

class AllocatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorPropertyTest, FeasibilityMaintainedAtEveryIteration) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 8));
  core::AllocatorOptions options = paper_options(0.2);
  options.max_iterations = 400;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(fap::testing::random_feasible(model, seed * 7 + 1));
  ASSERT_FALSE(result.trace.empty());
  for (const core::IterationRecord& rec : result.trace) {
    EXPECT_NEAR(fap::util::sum(rec.x), 1.0, 1e-9)
        << "iteration " << rec.iteration;
    for (const double xi : rec.x) {
      EXPECT_GE(xi, 0.0) << "iteration " << rec.iteration;
    }
  }
}

// --- Theorem 2: strict monotonicity -------------------------------------

TEST_P(AllocatorPropertyTest, CostStrictlyDecreasesUntilConvergence) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 8));
  // Moderate α keeps the second-order argument valid on these instances.
  core::AllocatorOptions options = paper_options(0.05);
  options.max_iterations = 3000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(fap::testing::random_feasible(model, seed * 13 + 5));
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_LE(result.trace[t].cost, result.trace[t - 1].cost + 1e-12)
        << "iteration " << t << " seed " << seed;
  }
}

TEST(Allocator, Theorem2AlphaBoundGuaranteesMonotonicity) {
  const core::SingleFileModel model = paper_model();
  // Even at 100x the appendix bound (still tiny), every step must improve.
  core::AllocatorOptions options =
      paper_options(100.0 * model.theorem2_alpha_bound(1e-3));
  options.max_iterations = 200;  // far from convergence at this α — fine
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  for (std::size_t t = 1; t < result.trace.size(); ++t) {
    EXPECT_LT(result.trace[t].cost, result.trace[t - 1].cost);
  }
}

// --- Optimality at convergence (Section 5.3 conditions) ------------------

TEST_P(AllocatorPropertyTest, ConvergesToProjectedGradientOptimum) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 8));
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  options.max_iterations = 200000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult decentralized =
      allocator.run(fap::testing::random_feasible(model, seed + 11));
  ASSERT_TRUE(decentralized.converged) << "seed " << seed;

  const fap::baselines::ProjectedGradientResult centralized =
      fap::baselines::projected_gradient_solve(
          model, core::uniform_allocation(model));
  EXPECT_NEAR(decentralized.cost, centralized.cost,
              1e-5 * (1.0 + std::fabs(centralized.cost)))
      << "seed " << seed;
}

TEST_P(AllocatorPropertyTest, KktConditionsHoldAtConvergence) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 8));
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-7;
  options.max_iterations = 500000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(fap::testing::random_feasible(model, seed + 17));
  ASSERT_TRUE(result.converged);
  // Section 5.3: ∂U/∂x_i = q for x_i > 0 and ∂U/∂x_i <= q for x_i = 0.
  const std::vector<double> du = model.marginal_utilities(result.x);
  double q = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (result.x[i] > 1e-6) {
      q += du[i];
      weight += 1.0;
    }
  }
  ASSERT_GT(weight, 0.0);
  q /= weight;
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    if (result.x[i] > 1e-6) {
      EXPECT_NEAR(du[i], q, 1e-4 * (1.0 + std::fabs(q))) << "i=" << i;
    } else {
      EXPECT_LE(du[i], q + 1e-4 * (1.0 + std::fabs(q))) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, AllocatorPropertyTest,
                         ::testing::Range(1, 11));

// --- Initial allocation does not affect the final optimum ---------------

TEST(Allocator, FinalAllocationIndependentOfStartingPoint) {
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(99, 6));
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-7;
  options.max_iterations = 500000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult a =
      allocator.run(fap::testing::random_feasible(model, 1));
  const core::AllocationResult b =
      allocator.run(fap::testing::random_feasible(model, 2));
  const core::AllocationResult c = allocator.run({1, 0, 0, 0, 0, 0});
  ASSERT_TRUE(a.converged && b.converged && c.converged);
  EXPECT_NEAR(a.cost, b.cost, 1e-6);
  EXPECT_NEAR(a.cost, c.cost, 1e-6);
}

// --- Boundary handling ----------------------------------------------------

TEST(Allocator, Figure4StartDoesNotFreezeTheLoadedNode) {
  // Start with the whole file at node 4 and a step large enough that the
  // literal set-A rule would exclude (and freeze) node 4 immediately.
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.3));
  const core::AllocationResult result = allocator.run({0.0, 0.0, 0.0, 1.0});
  ASSERT_TRUE(result.converged);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 2e-3);
  }
}

TEST(Allocator, LargeAlphaStillReachesTheOptimum) {
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.67));
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

TEST(Allocator, NodesAtZeroWithLowMarginalUtilityStayAtZero) {
  // Make node 3 very expensive to reach so its optimal share is zero.
  fap::core::SingleFileProblem problem = core::make_paper_ring_problem();
  for (std::size_t j = 0; j < 4; ++j) {
    if (j != 3) {
      problem.comm.set_cost(j, 3, 50.0);
    }
  }
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options = paper_options(0.1);
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run({0.34, 0.33, 0.33, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[3], 0.0, 1e-9);
  EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-9);
}

// --- Step rules -----------------------------------------------------------

TEST(Allocator, DynamicStepRuleConvergesFastOnThePaperRing) {
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions options = paper_options(0.1);
  options.step_rule = core::StepRule::kDynamic;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
  // Should be competitive with the best fixed α the paper found (4 iters).
  EXPECT_LE(result.iterations, 25u);
}

TEST(Allocator, DynamicAlphaBoundIsPositiveAwayFromOptimum) {
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.1));
  std::vector<std::size_t> all(model.dimension());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_GT(allocator.dynamic_alpha_bound({0.8, 0.1, 0.1, 0.0}, all), 0.0);
}

// --- Mechanics ------------------------------------------------------------

TEST(Allocator, TerminatesImmediatelyAtTheOptimum) {
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.3));
  const core::AllocationResult result =
      allocator.run({0.25, 0.25, 0.25, 0.25});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Allocator, StepOutcomeReportsSpreadAndActiveSet) {
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.3));
  const auto outcome = allocator.step({0.8, 0.1, 0.1, 0.0});
  EXPECT_FALSE(outcome.terminal);
  EXPECT_GT(outcome.marginal_spread, 0.0);
  EXPECT_EQ(outcome.active_set_size, 4u);
  EXPECT_GT(outcome.alpha_used, 0.0);
  EXPECT_NEAR(fap::util::sum(outcome.x), 1.0, 1e-12);
}

TEST(Allocator, RespectsIterationCap) {
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions options = paper_options(1e-4);  // extremely slow
  options.max_iterations = 5;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 5u);
  // Even when stopped early the intermediate allocation is feasible and
  // strictly better than the start — the property Section 5.3 highlights.
  EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-9);
  EXPECT_LT(result.cost, model.cost({0.8, 0.1, 0.1, 0.0}));
}

TEST(Allocator, TraceDisabledByDefault) {
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions options;
  options.alpha = 0.3;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});
  EXPECT_TRUE(result.trace.empty());
  EXPECT_TRUE(result.converged);
}

TEST(Allocator, RejectsInvalidOptionsAndInputs) {
  const core::SingleFileModel model = paper_model();
  core::AllocatorOptions bad;
  bad.alpha = 0.0;
  EXPECT_THROW(core::ResourceDirectedAllocator(model, bad),
               PreconditionError);
  bad = core::AllocatorOptions{};
  bad.epsilon = 0.0;
  EXPECT_THROW(core::ResourceDirectedAllocator(model, bad),
               PreconditionError);
  const core::ResourceDirectedAllocator allocator(model,
                                                  core::AllocatorOptions{});
  EXPECT_THROW(allocator.run({0.5, 0.5, 0.5, 0.5}), PreconditionError);
  EXPECT_THROW(allocator.run({1.0, 0.0, 0.0}), PreconditionError);
}

TEST(Allocator, ActiveSetExcludesOnlyBoundaryNodes) {
  const core::SingleFileModel model = paper_model();
  const core::ResourceDirectedAllocator allocator(model, paper_options(0.3));
  const core::ConstraintGroup group = model.constraint_groups().front();
  // At (0,0,0,1) the three empty nodes all have above-average marginal
  // utility; all four nodes stay active (node 3 is interior).
  const std::vector<double> x{0.0, 0.0, 0.0, 1.0};
  const std::vector<double> du = model.marginal_utilities(x);
  const auto active = allocator.active_set(group, x, du, 0.3);
  EXPECT_EQ(active.size(), 4u);
  // Flip the sign structure: an empty node with *below*-average marginal
  // utility must be excluded.
  const std::vector<double> du_low{-1.0, -1.0, -1.0, -10.0};
  const std::vector<double> x_zero{0.4, 0.3, 0.3, 0.0};
  const auto active2 = allocator.active_set(group, x_zero, du_low, 0.3);
  EXPECT_EQ(active2.size(), 3u);
  EXPECT_TRUE(std::find(active2.begin(), active2.end(), 3u) == active2.end());
}

// --- Fast active set ≡ reference transcription ---------------------------
//
// The O(n log n) incremental active-set procedure claims *decision*
// equivalence with the literal Section 5.2 transcription
// (active_set_reference), not merely agreement in the limit. These
// parameterized tests pin that claim across randomized instances: the two
// procedures must return the same index set at the starting allocation,
// and full runs driven by each must produce bit-identical trajectories.

struct EquivalenceInstance {
  core::SingleFileModel model;
  std::vector<double> start;
  double alpha = 0.3;
};

// Seeds cycle through three shapes: unconstrained with a random interior
// start, capacity-constrained with a water-filled start (some variables
// exactly at their cap — the ceiling-pinned boundary case), and
// boundary-pinned starts with all mass on two nodes (the rest exactly 0).
EquivalenceInstance equivalence_instance(std::uint64_t seed) {
  const std::size_t nodes = 3 + seed % 14;
  core::SingleFileProblem problem =
      fap::testing::random_single_file_problem(seed, nodes);
  fap::util::Rng rng(seed * 7919 + 1);
  const std::uint64_t variant = seed % 3;
  if (variant == 1) {
    problem.storage_capacity.resize(nodes);
    double total = 0.0;
    for (double& cap : problem.storage_capacity) {
      cap = rng.uniform(0.15, 0.9);
      total += cap;
    }
    if (total < 1.1) {
      for (double& cap : problem.storage_capacity) {
        cap *= 1.1 / total;
      }
    }
  }
  core::SingleFileModel model(std::move(problem));
  std::vector<double> start;
  if (variant == 1) {
    start = core::uniform_allocation(model);
  } else if (variant == 2) {
    start.assign(nodes, 0.0);
    const std::size_t a = seed % nodes;
    const std::size_t b = (seed / 3 + 1) % nodes;
    if (a == b) {
      start[a] = 1.0;
    } else {
      start[a] = 0.8;
      start[b] = 0.2;
    }
  } else {
    start = fap::testing::random_feasible(model, seed + 1000);
  }
  return {std::move(model), std::move(start), rng.uniform(0.05, 1.0)};
}

class ActiveSetEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ActiveSetEquivalenceTest, FastMatchesReferenceAtStart) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const EquivalenceInstance inst = equivalence_instance(seed);
  core::AllocatorOptions options;
  options.alpha = inst.alpha;
  const core::ResourceDirectedAllocator allocator(inst.model, options);
  const std::vector<double> du = inst.model.marginal_utilities(inst.start);
  for (const core::ConstraintGroup& group : inst.model.constraint_groups()) {
    EXPECT_EQ(allocator.active_set(group, inst.start, du, inst.alpha),
              allocator.active_set_reference(group, inst.start, du,
                                             inst.alpha))
        << "seed=" << seed;
  }
}

TEST_P(ActiveSetEquivalenceTest, RunTrajectoriesAreBitIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const EquivalenceInstance inst = equivalence_instance(seed);
  core::AllocatorOptions options;
  options.alpha = inst.alpha;
  options.epsilon = 1e-4;
  options.max_iterations = 300;
  options.record_trace = true;
  // Exercise the dynamic step rule on a third of the seeds: it feeds the
  // active set back into the α computation, so a divergence would compound.
  if (seed % 3 == 0) {
    options.step_rule = core::StepRule::kDynamic;
  }
  const core::ResourceDirectedAllocator fast(inst.model, options);
  options.use_reference_active_set = true;
  const core::ResourceDirectedAllocator reference(inst.model, options);

  const core::AllocationResult a = fast.run(inst.start);
  const core::AllocationResult b = reference.run(inst.start);
  ASSERT_EQ(a.iterations, b.iterations) << "seed=" << seed;
  ASSERT_EQ(a.converged, b.converged) << "seed=" << seed;
  EXPECT_EQ(a.x, b.x) << "seed=" << seed;  // element-wise bitwise equality
  EXPECT_EQ(a.cost, b.cost) << "seed=" << seed;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "seed=" << seed;
  for (std::size_t t = 0; t < a.trace.size(); ++t) {
    EXPECT_EQ(a.trace[t].x, b.trace[t].x) << "seed=" << seed << " it=" << t;
    EXPECT_EQ(a.trace[t].alpha, b.trace[t].alpha)
        << "seed=" << seed << " it=" << t;
    EXPECT_EQ(a.trace[t].active_set_size, b.trace[t].active_set_size)
        << "seed=" << seed << " it=" << t;
    EXPECT_EQ(a.trace[t].marginal_spread, b.trace[t].marginal_spread)
        << "seed=" << seed << " it=" << t;
  }
}

// 200 randomized instances (the two TEST_Ps above share them), covering
// unconstrained, capacity-constrained, and boundary-pinned shapes.
INSTANTIATE_TEST_SUITE_P(RandomInstances, ActiveSetEquivalenceTest,
                         ::testing::Range(1, 201));

TEST(Allocator, StepMatchesBetweenFastAndReferencePaths) {
  // One explicit capacity-pinned corner: a variable exactly at its cap
  // with above-average marginal utility must be excluded identically by
  // both procedures.
  core::SingleFileProblem problem =
      fap::testing::random_single_file_problem(42, 6);
  problem.storage_capacity = {0.3, 0.3, 0.3, 0.3, 0.3, 0.3};
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options;
  options.alpha = 0.5;
  const core::ResourceDirectedAllocator fast(model, options);
  options.use_reference_active_set = true;
  const core::ResourceDirectedAllocator reference(model, options);
  const std::vector<double> x{0.3, 0.3, 0.3, 0.1, 0.0, 0.0};
  const auto a = fast.step(x);
  const auto b = reference.step(x);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.active_set_size, b.active_set_size);
  EXPECT_EQ(a.alpha_used, b.alpha_used);
}

}  // namespace
