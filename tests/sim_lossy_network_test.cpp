// Fault-injection semantics of the virtual network: deterministic
// replay from the seed, loss/duplication/jitter behavior, bounded
// reordering, and crash-script enforcement.
#include "sim/lossy_network.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/contracts.hpp"

namespace {

namespace sim = fap::sim;

sim::Datagram datagram(std::size_t from, std::size_t to,
                       std::uint64_t seq = 0) {
  sim::Datagram d;
  d.from = from;
  d.to = to;
  d.seq = seq;
  d.payload = {1.0, 2.0};
  return d;
}

// (tick, from, to, seq) trace of everything a network delivers over
// `ticks` ticks after `sends` submissions at tick 0.
std::vector<std::tuple<std::uint64_t, std::size_t, std::size_t,
                       std::uint64_t>>
delivery_trace(sim::LossyNetwork& net,
               const std::vector<sim::Datagram>& sends, std::size_t ticks) {
  for (const sim::Datagram& d : sends) {
    net.send(d);
  }
  std::vector<std::tuple<std::uint64_t, std::size_t, std::size_t,
                         std::uint64_t>>
      trace;
  for (std::size_t t = 0; t < ticks; ++t) {
    for (const sim::Datagram& d : net.tick()) {
      trace.emplace_back(net.now(), d.from, d.to, d.seq);
    }
  }
  return trace;
}

TEST(LossyNetwork, FaultFreeDeliversInOrderAfterMinDelay) {
  sim::LossyNetwork net(3, {});
  net.send(datagram(0, 1, 7));
  net.send(datagram(0, 2, 8));
  net.send(datagram(2, 1, 9));
  const std::vector<sim::Datagram> due = net.tick();
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].seq, 7u);  // FIFO among equal delivery ticks
  EXPECT_EQ(due[1].seq, 8u);
  EXPECT_EQ(due[2].seq, 9u);
  EXPECT_EQ(due[0].payload, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(net.tick().empty());
  EXPECT_EQ(net.stats().delivered, 3u);
  EXPECT_EQ(net.stats().sent, 3u);
}

TEST(LossyNetwork, SameSeedReplaysTheExactSameFaults) {
  sim::FaultConfig faults;
  faults.loss = 0.3;
  faults.duplicate = 0.2;
  faults.jitter_ticks = 5;
  faults.seed = 123;
  std::vector<sim::Datagram> sends;
  for (std::uint64_t k = 0; k < 50; ++k) {
    sends.push_back(datagram(k % 4, (k + 1) % 4, k));
  }
  sim::LossyNetwork a(4, faults);
  sim::LossyNetwork b(4, faults);
  EXPECT_EQ(delivery_trace(a, sends, 10), delivery_trace(b, sends, 10));
  EXPECT_EQ(a.stats().dropped_loss, b.stats().dropped_loss);
  EXPECT_EQ(a.stats().duplicates_injected, b.stats().duplicates_injected);

  faults.seed = 124;
  sim::LossyNetwork c(4, faults);
  EXPECT_NE(delivery_trace(a, sends, 10), delivery_trace(c, sends, 10));
}

TEST(LossyNetwork, CertainLossDropsEverything) {
  sim::FaultConfig faults;
  faults.loss = 1.0;
  sim::LossyNetwork net(2, faults);
  for (int k = 0; k < 10; ++k) {
    net.send(datagram(0, 1));
  }
  EXPECT_TRUE(net.tick().empty());
  EXPECT_EQ(net.stats().dropped_loss, 10u);
  EXPECT_EQ(net.stats().delivered, 0u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(LossyNetwork, CertainDuplicationDeliversTwice) {
  sim::FaultConfig faults;
  faults.duplicate = 1.0;
  sim::LossyNetwork net(2, faults);
  net.send(datagram(0, 1, 42));
  const std::vector<sim::Datagram> due = net.tick();
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].seq, 42u);
  EXPECT_EQ(due[1].seq, 42u);
  EXPECT_EQ(net.stats().duplicates_injected, 1u);
}

TEST(LossyNetwork, JitterBoundsDelayAndReordersSomewhere) {
  sim::FaultConfig faults;
  faults.min_delay_ticks = 2;
  faults.jitter_ticks = 4;
  faults.seed = 9;
  sim::LossyNetwork net(2, faults);
  const std::size_t kMessages = 40;
  for (std::uint64_t k = 0; k < kMessages; ++k) {
    net.send(datagram(0, 1, k));
  }
  std::vector<std::uint64_t> arrival_seq;
  std::size_t delivered_before_floor = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    for (const sim::Datagram& d : net.tick()) {
      arrival_seq.push_back(d.seq);
      if (net.now() < faults.min_delay_ticks) {
        ++delivered_before_floor;
      }
      EXPECT_LE(net.now(), faults.min_delay_ticks + faults.jitter_ticks);
    }
  }
  ASSERT_EQ(arrival_seq.size(), kMessages);  // everything arrives
  EXPECT_EQ(delivered_before_floor, 0u);     // never before the floor
  // Unequal delay draws must have swapped at least one pair.
  EXPECT_FALSE(std::is_sorted(arrival_seq.begin(), arrival_seq.end()));
}

TEST(LossyNetwork, CrashScriptDropsBothDirectionsUntilRejoin) {
  sim::FaultConfig faults;
  faults.crashes = {{1, 0, 3}};  // node 1 down for ticks [0, 3)
  sim::LossyNetwork net(2, faults);
  EXPECT_FALSE(net.node_up(1, 0));
  EXPECT_FALSE(net.node_up(1, 2));
  EXPECT_TRUE(net.node_up(1, 3));

  net.send(datagram(1, 0));  // down sender: refused
  net.send(datagram(0, 1));  // delivery due at tick 1: receiver down
  EXPECT_TRUE(net.tick().empty());
  EXPECT_EQ(net.stats().dropped_crash, 2u);

  net.tick();  // tick 2: still down
  net.tick();  // tick 3: node 1 back
  net.send(datagram(1, 0));
  net.send(datagram(0, 1));
  EXPECT_EQ(net.tick().size(), 2u);
  EXPECT_EQ(net.stats().dropped_crash, 2u);
}

TEST(LossyNetwork, InFlightMessageToANodeThatCrashesIsLost) {
  sim::FaultConfig faults;
  faults.min_delay_ticks = 4;
  faults.crashes = {{1, 2, 10}};
  sim::LossyNetwork net(2, faults);
  net.send(datagram(0, 1));  // due at tick 4, node 1 down [2, 10)
  for (int t = 0; t < 6; ++t) {
    EXPECT_TRUE(net.tick().empty());
  }
  EXPECT_EQ(net.stats().dropped_crash, 1u);
}

TEST(LossyNetwork, RejectsMalformedConfigsAndDatagrams) {
  sim::FaultConfig bad_loss;
  bad_loss.loss = 1.5;
  EXPECT_THROW(sim::LossyNetwork(2, bad_loss),
               fap::util::PreconditionError);
  sim::FaultConfig bad_delay;
  bad_delay.min_delay_ticks = 0;
  EXPECT_THROW(sim::LossyNetwork(2, bad_delay),
               fap::util::PreconditionError);
  sim::FaultConfig bad_crash;
  bad_crash.crashes = {{5, 0, 1}};
  EXPECT_THROW(sim::LossyNetwork(2, bad_crash),
               fap::util::PreconditionError);
  sim::FaultConfig empty_window;
  empty_window.crashes = {{0, 4, 4}};
  EXPECT_THROW(sim::LossyNetwork(2, empty_window),
               fap::util::PreconditionError);

  sim::LossyNetwork net(2, {});
  EXPECT_THROW(net.send(datagram(0, 0)), fap::util::PreconditionError);
  EXPECT_THROW(net.send(datagram(0, 5)), fap::util::PreconditionError);
}

}  // namespace
