// Tests for the Section 7 multicopy virtual-ring model, including an exact
// pin of the paper's worked example (Section 7.2).
#include "core/ring_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

// The Section 7.2 worked example: a 7-node unidirectional ring (paper
// nodes 1..7 = indices 0..6) with forward hop costs chosen so that
// d(3→4)=2, d(2→4)=5, d(1→4)=7, d(7→4)=11, and the allocation
//   x = (0.4, 0.1, 0.2, 0.8, 0.2, 0.1, 0.2),  Σx = 2 (m = 2 copies).
// The paper computes: communication cost of accesses directed to node 4
// (index 3) = 11·0.1 + 7·0.3 + 5·0.7 + 2·0.8 + 0·0.8 = 8.3, and the
// arrival rate there = 0.1 + 0.3 + 0.7 + 0.8 + 0.8 = 2.7 (λ_j = 1).
core::RingProblem worked_example_problem() {
  // Hop costs position p -> p+1: 1→2: 2, 2→3: 3, 3→4: 2, then 1,1,1 and
  // 7→1: 4 to close the ring.
  const net::VirtualRing ring(std::vector<double>{2, 3, 2, 1, 1, 1, 4});
  return core::RingProblem{ring,
                           /*copies=*/2.0,
                           std::vector<double>(7, 1.0),
                           std::vector<double>(7, 3.5),
                           /*k=*/1.0,
                           fap::queueing::DelayModel::mm1(0.95),
                           /*max_per_node=*/0.0};
}

const std::vector<double> kWorkedExampleX{0.4, 0.1, 0.2, 0.8, 0.2, 0.1, 0.2};

TEST(RingModel, WorkedExampleAccessWeightsToNode4) {
  const core::RingModel model(worked_example_problem());
  const auto w = model.access_weights(kWorkedExampleX);
  // Paper: node 7 needs 0.1 at node 4; node 1 needs 0.3; node 2 needs
  // 0.7; node 3 needs 0.8; node 4 serves 0.8 of itself; nodes 5,6 nothing.
  EXPECT_NEAR(w[6][3], 0.1, 1e-12);
  EXPECT_NEAR(w[0][3], 0.3, 1e-12);
  EXPECT_NEAR(w[1][3], 0.7, 1e-12);
  EXPECT_NEAR(w[2][3], 0.8, 1e-12);
  EXPECT_NEAR(w[3][3], 0.8, 1e-12);
  EXPECT_NEAR(w[4][3], 0.0, 1e-12);
  EXPECT_NEAR(w[5][3], 0.0, 1e-12);
}

TEST(RingModel, WorkedExampleCommunicationCostIs8Point3) {
  const core::RingModel model(worked_example_problem());
  const auto w = model.access_weights(kWorkedExampleX);
  const net::VirtualRing& ring = model.problem().ring;
  double comm_to_node4 = 0.0;
  for (std::size_t j = 0; j < 7; ++j) {
    comm_to_node4 += w[j][3] * ring.forward_distance(j, 3);
  }
  EXPECT_NEAR(comm_to_node4, 8.3, 1e-12);
}

TEST(RingModel, WorkedExampleArrivalRateIs2Point7) {
  const core::RingModel model(worked_example_problem());
  const std::vector<double> arrivals = model.arrival_rates(kWorkedExampleX);
  EXPECT_NEAR(arrivals[3], 2.7, 1e-12);
}

TEST(RingModel, EveryRowOfAccessWeightsSumsToOneCopy) {
  const core::RingModel model(
      fap::testing::random_ring_problem(3, 6, /*copies=*/2.0));
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<double> x = fap::testing::random_feasible(model, seed);
    const auto w = model.access_weights(x);
    for (std::size_t j = 0; j < 6; ++j) {
      double row = 0.0;
      for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_GE(w[j][i], 0.0);
        row += w[j][i];
      }
      EXPECT_NEAR(row, 1.0, 1e-9) << "source " << j;
    }
  }
}

TEST(RingModel, TotalArrivalsConserveTotalRate) {
  const core::RingModel model(
      fap::testing::random_ring_problem(5, 7, /*copies=*/2.5));
  double total_rate = 0.0;
  for (const double rate : model.problem().lambda) {
    total_rate += rate;
  }
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::vector<double> x = fap::testing::random_feasible(model, seed);
    const std::vector<double> arrivals = model.arrival_rates(x);
    EXPECT_NEAR(fap::util::sum(arrivals), total_rate, 1e-9);
  }
}

TEST(RingModel, SingleCopyWeightsEqualAllocation) {
  // With m = 1, every source accesses exactly x_i at node i (the routing
  // reduces to the Section 4 model up to the ring-distance convention).
  const core::RingModel model(
      fap::testing::random_ring_problem(7, 5, /*copies=*/1.0));
  const std::vector<double> x = fap::testing::random_feasible(model, 3);
  const auto w = model.access_weights(x);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(w[j][i], x[i], 1e-9);
    }
  }
}

TEST(RingModel, CostSplitsIntoCommPlusDelay) {
  const core::RingModel model(
      fap::testing::random_ring_problem(11, 6, 2.0));
  const std::vector<double> x = fap::testing::random_feasible(model, 4);
  EXPECT_NEAR(model.cost(x),
              model.communication_cost(x) + model.delay_cost(x), 1e-12);
  EXPECT_GT(model.communication_cost(x), 0.0);
  EXPECT_GT(model.delay_cost(x), 0.0);
}

class RingDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(RingDerivativeTest, GradientMatchesForwardDifferences) {
  // The objective is piecewise smooth; at a random interior point the
  // right-hand analytic derivative matches a small forward difference.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::RingModel model(
      fap::testing::random_ring_problem(seed, 5 + seed % 4, 2.0));
  const std::vector<double> x =
      fap::testing::random_feasible(model, seed + 100);
  const std::vector<double> analytic = model.gradient(x);
  const double h = 1e-7;
  const double base = model.cost(x);
  for (std::size_t l = 0; l < x.size(); ++l) {
    std::vector<double> bumped = x;
    bumped[l] += h;  // leaves feasibility by h; cost() does not re-validate
    const double numeric = (model.cost(bumped) - base) / h;
    EXPECT_NEAR(analytic[l], numeric, 1e-4 * (1.0 + std::fabs(numeric)))
        << "seed=" << seed << " l=" << l;
  }
}

TEST_P(RingDerivativeTest, SecondDerivativeMatchesNumeric) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::RingModel model(
      fap::testing::random_ring_problem(seed, 5 + seed % 4, 2.0));
  const std::vector<double> x =
      fap::testing::random_feasible(model, seed + 200);
  const std::vector<double> analytic = model.second_derivative(x);
  const auto f = [&model](const std::vector<double>& v) {
    return model.cost(v);
  };
  for (std::size_t l = 0; l < x.size(); ++l) {
    const double numeric =
        fap::util::numeric_second_derivative(f, x, l, 1e-5);
    EXPECT_NEAR(analytic[l], numeric, 2e-2 * (1.0 + std::fabs(numeric)))
        << "seed=" << seed << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRings, RingDerivativeTest,
                         ::testing::Values(1, 2, 5, 7, 12, 15));

TEST(RingModel, CommunicationTermIsPiecewiseLinear) {
  // Within a region of fixed copy boundaries the communication cost is
  // linear: moving mass between two nodes in equal and opposite amounts
  // changes it proportionally.
  const core::RingModel model(worked_example_problem());
  std::vector<double> x = kWorkedExampleX;
  const double c0 = model.communication_cost(x);
  std::vector<double> x1 = x;
  x1[0] += 0.01;
  x1[4] -= 0.01;
  const double c1 = model.communication_cost(x1);
  std::vector<double> x2 = x;
  x2[0] += 0.02;
  x2[4] -= 0.02;
  const double c2 = model.communication_cost(x2);
  EXPECT_NEAR(c2 - c0, 2.0 * (c1 - c0), 1e-9);
}

TEST(RingModel, MarginalUtilityJumpsByWholeLinkCosts) {
  // Crossing a copy boundary changes the communication gradient in jumps:
  // "the jumps being whole link costs" (Section 7.2). Compare the
  // communication part of the gradient on either side of a boundary.
  const net::VirtualRing ring(std::vector<double>{4, 1, 1, 1});
  core::RingProblem problem{ring, 2.0, std::vector<double>(4, 0.25),
                            std::vector<double>(4, 1.5), 0.0,  // k = 0: comm only
                            fap::queueing::DelayModel::mm1(0.95), 0.0};
  const core::RingModel model(problem);
  // At x = (0.5, 0.5, 0.5, 0.5) every source's copy boundary sits exactly
  // on a node; nudging x_0 across it must change some marginal by a whole
  // link cost.
  std::vector<double> below{0.49, 0.51, 0.5, 0.5};
  std::vector<double> above{0.51, 0.49, 0.5, 0.5};
  const std::vector<double> grad_below = model.gradient(below);
  const std::vector<double> grad_above = model.gradient(above);
  double max_jump = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    max_jump = std::max(max_jump,
                        std::fabs(grad_below[i] - grad_above[i]));
  }
  EXPECT_GT(max_jump, 0.2);  // an O(link-cost·λ) discontinuity, not O(0.02)
}

TEST(RingModel, AllowsMoreThanAWholeCopyAtOneNode) {
  // Section 7.2: "a node can be allocated more than a whole file, if that
  // is what is cheaper for the system" — the model must accept x_i > 1.
  const core::RingModel model(
      fap::testing::random_ring_problem(21, 4, 2.0));
  const std::vector<double> x{1.7, 0.1, 0.1, 0.1};
  EXPECT_NO_THROW(model.check_feasible(x));
  EXPECT_GT(model.cost(x), 0.0);
}

TEST(RingModel, TrimToWholeCopyCapsAndRedistributes) {
  const core::RingModel model(
      fap::testing::random_ring_problem(23, 4, 2.0));
  const std::vector<double> x{1.7, 0.1, 0.1, 0.1};
  const std::vector<double> trimmed = core::trim_to_whole_copy(model, x);
  EXPECT_NEAR(fap::util::sum(trimmed), 2.0, 1e-9);
  for (const double xi : trimmed) {
    EXPECT_LE(xi, 1.0 + 1e-12);
    EXPECT_GE(xi, 0.0);
  }
  EXPECT_NEAR(trimmed[0], 1.0, 1e-12);
}

TEST(RingModel, TrimIsIdentityWhenAlreadyCapped) {
  const core::RingModel model(
      fap::testing::random_ring_problem(29, 4, 2.0));
  const std::vector<double> x{0.5, 0.5, 0.5, 0.5};
  const std::vector<double> trimmed = core::trim_to_whole_copy(model, x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(trimmed[i], x[i]);
  }
}

TEST(RingModel, ConstraintGroupCarriesCopyCount) {
  const core::RingModel model(
      fap::testing::random_ring_problem(31, 5, 2.5));
  const auto groups = model.constraint_groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_DOUBLE_EQ(groups[0].total, 2.5);
  EXPECT_EQ(groups[0].indices.size(), 5u);
}

TEST(RingModel, RejectsFewerThanOneCopy) {
  core::RingProblem problem = fap::testing::random_ring_problem(33, 4, 2.0);
  problem.copies = 0.5;
  EXPECT_THROW(core::RingModel{problem}, fap::util::PreconditionError);
}

TEST(RingModel, PaperRingFactoryMatchesSection73Setup) {
  const core::RingProblem problem =
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(problem.ring.size(), 4u);
  EXPECT_DOUBLE_EQ(problem.ring.forward_cost(0), 4.0);
  EXPECT_DOUBLE_EQ(problem.copies, 2.0);
  EXPECT_DOUBLE_EQ(problem.mu[0], 1.5);
}

}  // namespace
