// Batch delay-law overloads and delay-curve edge behavior.
//
// Two concerns share this suite: (1) the vectorizable *_batch overloads
// must be bit-identical to the scalar entry points element for element —
// that identity is what lets the batched allocator kernel claim
// bit-identical trajectories; (2) the delay laws' edge regions — the
// rho_max knee, the linearized overload branch, and the derivative
// formulas themselves — are pinned against finite differences of the
// sojourn curve.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "queueing/delay.hpp"
#include "util/rng.hpp"

namespace {

using fap::queueing::DelayModel;
using fap::queueing::Discipline;
using fap::util::Rng;

std::vector<DelayModel> interesting_models() {
  return {
      DelayModel::mm1(),          DelayModel::md1(),
      DelayModel::mg1(0.3),       DelayModel::mg1(2.4),
      DelayModel::mm1(0.7),       DelayModel::md1(0.85),
      DelayModel::mg1(1.7, 0.6),  DelayModel::mmc(2),
      DelayModel::mmc(4, 0.8),
  };
}

// Random (a, mu) pairs valid for `model`: overload region included for
// linearized models, a < capacity enforced for pure ones.
void fill_random_points(const DelayModel& model, Rng& rng, std::size_t count,
                        std::vector<double>& a, std::vector<double>& mu) {
  a.resize(count);
  mu.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    mu[i] = rng.uniform(0.5, 3.0);
    const double capacity = model.capacity(mu[i]);
    const double hi =
        model.rho_max() < 1.0 ? 2.0 * capacity : 0.999 * capacity;
    a[i] = rng.uniform(0.0, hi);
  }
}

TEST(DelayBatch, BitIdenticalToScalarAcrossModelsAndPoints) {
  Rng rng(2024);
  for (const DelayModel& model : interesting_models()) {
    std::vector<double> a;
    std::vector<double> mu;
    fill_random_points(model, rng, 257, a, mu);  // odd: exercise tails
    std::vector<double> out(a.size());

    model.sojourn_batch(a.data(), mu.data(), out.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(model.sojourn(a[i], mu[i])))
          << "sojourn point " << i;
    }
    model.d_sojourn_batch(a.data(), mu.data(), out.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(model.d_sojourn(a[i], mu[i])))
          << "d_sojourn point " << i;
    }
    model.d2_sojourn_batch(a.data(), mu.data(), out.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(model.d2_sojourn(a[i], mu[i])))
          << "d2_sojourn point " << i;
    }
  }
}

TEST(DelayBatch, ZeroCountIsANoOp) {
  const DelayModel model = DelayModel::mm1();
  model.sojourn_batch(nullptr, nullptr, nullptr, 0);
  model.d_sojourn_batch(nullptr, nullptr, nullptr, 0);
  model.d2_sojourn_batch(nullptr, nullptr, nullptr, 0);
}

// --- rho_max knee boundary -------------------------------------------

// Exactly AT the knee (a == rho_max * mu) the tangent extension is used;
// its value and slope agree with the pure curve (the extension is the
// first-order Taylor expansion around the knee), and curvature drops to
// zero — the defining property of the linearization.
TEST(DelayEdge, KneeBoundaryIsContinuousWithZeroCurvatureBeyond) {
  const double mu = 2.0;
  const double rho_max = 0.8;
  for (const DelayModel& model :
       {DelayModel::mm1(rho_max), DelayModel::md1(rho_max),
        DelayModel::mg1(1.9, rho_max)}) {
    const double knee = rho_max * mu;
    const DelayModel pure(model.discipline(), model.scv(), 1.0);
    // Value and slope are continuous at the knee...
    EXPECT_DOUBLE_EQ(model.sojourn(knee, mu), pure.sojourn(knee, mu));
    EXPECT_DOUBLE_EQ(model.d_sojourn(knee, mu), pure.d_sojourn(knee, mu));
    // ...curvature is not (left limit positive, at/after the knee zero).
    EXPECT_GT(model.d2_sojourn(knee - 1e-9, mu), 0.0);
    EXPECT_EQ(model.d2_sojourn(knee, mu), 0.0);
    EXPECT_EQ(model.d2_sojourn(10.0 * knee, mu), 0.0);
  }
}

// In the linearized overload region (a > knee, even a > capacity) the
// curve is exactly affine: T(a) = T(knee) + T'(knee) (a - knee), finite
// for arbitrarily large a.
TEST(DelayEdge, OverloadRegionIsExactlyAffine) {
  const double mu = 1.5;
  const double rho_max = 0.75;
  const DelayModel model = DelayModel::mg1(0.4, rho_max);
  const double knee = rho_max * mu;
  const double t0 = model.sojourn(knee, mu);
  const double slope = model.d_sojourn(knee, mu);
  for (const double a : {knee + 0.1, mu, 2.0 * mu, 50.0 * mu}) {
    EXPECT_DOUBLE_EQ(model.sojourn(a, mu), t0 + slope * (a - knee));
    EXPECT_EQ(model.d_sojourn(a, mu), slope);
  }
}

// --- finite-difference consistency of the derivatives ----------------

// Central differences of sojourn() must match d_sojourn()/d2_sojourn()
// to truncation accuracy, for both the closed-form single-server models
// and the numerically-differentiated M/M/c model.
TEST(DelayEdge, DerivativesMatchFiniteDifferences) {
  struct Case {
    DelayModel model;
    double mu;
    double a;
  };
  const std::vector<Case> cases = {
      {DelayModel::mm1(), 2.0, 0.9},
      {DelayModel::md1(), 1.5, 0.6},
      {DelayModel::mg1(2.2), 2.5, 1.3},
      {DelayModel::mm1(0.9), 2.0, 1.2},  // below the knee, curved region
      {DelayModel::mmc(3), 1.0, 1.8},
      {DelayModel::mmc(2), 1.5, 1.1},
  };
  for (const Case& c : cases) {
    const double h = 1e-5 * c.mu;
    const double fd1 =
        (c.model.sojourn(c.a + h, c.mu) - c.model.sojourn(c.a - h, c.mu)) /
        (2.0 * h);
    const double fd2 = (c.model.sojourn(c.a + h, c.mu) -
                        2.0 * c.model.sojourn(c.a, c.mu) +
                        c.model.sojourn(c.a - h, c.mu)) /
                       (h * h);
    const double d1 = c.model.d_sojourn(c.a, c.mu);
    const double d2 = c.model.d2_sojourn(c.a, c.mu);
    EXPECT_NEAR(fd1, d1, 1e-5 * (1.0 + std::abs(d1)));
    EXPECT_NEAR(fd2, d2, 1e-3 * (1.0 + std::abs(d2)));
  }
}

}  // namespace
