// Tests for the joint allocation + routing optimizer (Section 8.2).
#include "core/joint_routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "net/generators.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;

core::JointRoutingProblem ring_problem(double congestion) {
  return core::JointRoutingProblem{net::make_ring(4, 1.0),
                                   core::Workload::uniform(4, 1.0),
                                   std::vector<double>(4, 1.5),
                                   /*k=*/1.0,
                                   fap::queueing::DelayModel(),
                                   congestion};
}

core::JointRoutingOptions default_options() {
  core::JointRoutingOptions options;
  options.allocator.alpha = 0.3;
  options.allocator.epsilon = 1e-6;
  options.allocator.max_iterations = 100000;
  return options;
}

TEST(JointRouting, ZeroCongestionReproducesThePlainAlgorithm) {
  const core::JointRoutingOptimizer optimizer(ring_problem(0.0),
                                              default_options());
  const core::JointRoutingResult result =
      optimizer.run({0.8, 0.1, 0.1, 0.0});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 1e-3);
  }
  // With γ = 0 the routing never changes: two outer passes suffice
  // (the second only confirms the fixed point).
  EXPECT_LE(result.outer_iterations, 3u);
}

TEST(JointRouting, LinkFlowsAccountForAllRemoteTraffic) {
  const core::JointRoutingProblem problem = ring_problem(0.0);
  const core::JointRoutingOptimizer optimizer(problem, default_options());
  const std::vector<double> x{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> flow =
      optimizer.link_flows(problem.topology, x);
  ASSERT_EQ(flow.size(), 4u);
  // Total link traversals: per source, remote traffic 0.25·0.25 to each
  // of three nodes over 1+2+1 hops = 0.25; times 4 sources = 1.0. The
  // opposite-node traffic has two equal-cost routes and deterministic
  // tie-breaking distributes it unevenly, so only the total is exact.
  EXPECT_NEAR(fap::util::sum(flow), 1.0, 1e-9);
  for (const double f : flow) {
    EXPECT_GE(f, 0.25 * 0.25 * 3 - 1e-9);  // at least the adjacent traffic
  }
}

TEST(JointRouting, FlowsFollowCheapestRoutes) {
  // Line 0-1-2 plus expensive direct 0-2: flow 0->2 takes the two-hop
  // route.
  net::Topology topology(3);
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(1, 2, 1.0);
  topology.add_edge(0, 2, 10.0);
  core::JointRoutingProblem problem{topology,
                                    core::Workload::uniform(3, 0.9),
                                    std::vector<double>(3, 1.5),
                                    1.0,
                                    fap::queueing::DelayModel(),
                                    0.0};
  const core::JointRoutingOptimizer optimizer(problem, default_options());
  const std::vector<double> flow =
      optimizer.link_flows(topology, {0.0, 0.0, 1.0});
  // All of node 0's and node 1's traffic to node 2 avoids the 0-2 link.
  EXPECT_NEAR(flow[2], 0.0, 1e-12);           // edge 0-2
  EXPECT_NEAR(flow[0], 0.3, 1e-9);            // edge 0-1 carries node 0's
  EXPECT_NEAR(flow[1], 0.3 + 0.3, 1e-9);      // edge 1-2 carries 0's + 1's
}

TEST(JointRouting, CongestionConsolidatesTheFileOnTheHeavyClusterSide) {
  // Dumbbell: cluster A {0,1,2} and cluster B {3,4,5} joined by the
  // single bridge 2-3; A generates 2x B's traffic. Without congestion a
  // little file mass sits in B (delay balancing). Pricing links by load
  // makes every *crossing* expensive, and crossings are minimized by
  // consolidating the file where most demand originates: B's share
  // shrinks and the bridge carries less flow. (Counter to naive
  // intuition, congestion pushes the file *away* from the minority
  // cluster — the bridge is cheapest when only B's minority traffic
  // crosses it.)
  net::Topology dumbbell(6);
  dumbbell.add_edge(0, 1, 1.0);
  dumbbell.add_edge(0, 2, 1.0);
  dumbbell.add_edge(1, 2, 1.0);
  dumbbell.add_edge(3, 4, 1.0);
  dumbbell.add_edge(3, 5, 1.0);
  dumbbell.add_edge(4, 5, 1.0);
  dumbbell.add_edge(2, 3, 1.0);  // the bridge

  core::JointRoutingProblem problem{dumbbell,
                                    core::Workload{{0.2, 0.2, 0.2,
                                                    0.1, 0.1, 0.1}},
                                    std::vector<double>(6, 1.5),
                                    /*k=*/0.2,
                                    fap::queueing::DelayModel(),
                                    /*congestion=*/0.0};
  core::JointRoutingOptions options = default_options();
  options.max_outer_iterations = 300;
  options.tol = 1e-5;
  const core::JointRoutingOptimizer decoupled(problem, options);
  const auto base = decoupled.run(std::vector<double>(6, 1.0 / 6.0));

  problem.congestion_factor = 6.0;
  const core::JointRoutingOptimizer coupled(problem, options);
  const auto congested = coupled.run(std::vector<double>(6, 1.0 / 6.0));

  ASSERT_TRUE(base.converged);
  ASSERT_TRUE(congested.converged);
  const auto cluster_b_share = [](const std::vector<double>& x) {
    return x[3] + x[4] + x[5];
  };
  EXPECT_LT(cluster_b_share(congested.x), cluster_b_share(base.x) - 0.01);
  // The bridge (edge index 6) carries less flow after consolidation.
  const std::vector<double> base_flow =
      decoupled.link_flows(dumbbell, base.x);
  const std::vector<double> congested_flow =
      coupled.link_flows(dumbbell, congested.x);
  EXPECT_LT(congested_flow[6], base_flow[6]);
}

TEST(JointRouting, ConvergesOnRandomNetworks) {
  for (const std::uint64_t seed : {3u, 7u, 19u}) {
    fap::util::Rng rng(seed);
    const net::Topology topology = net::make_erdos_renyi(8, 0.4, 0.5, 2.0,
                                                         rng);
    core::Workload workload;
    workload.lambda.assign(8, 0.0);
    for (double& rate : workload.lambda) {
      rate = rng.uniform(0.05, 0.15);
    }
    core::JointRoutingProblem problem{topology, workload,
                                      std::vector<double>(8, 2.0), 1.0,
                                      fap::queueing::DelayModel(), 0.5};
    core::JointRoutingOptions options = default_options();
    options.max_outer_iterations = 500;
    options.damping = 0.3;  // strong smoothing against route flapping
    options.tol = 1e-5;
    const core::JointRoutingOptimizer optimizer(problem, options);
    const auto result =
        optimizer.run(std::vector<double>(8, 0.125));
    EXPECT_TRUE(result.converged) << "seed " << seed;
    EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-9);
    // Costs along the outer trace settle (no persistent flapping).
    const auto& last = result.trace.back();
    EXPECT_LT(last.allocation_delta, 1e-5);
  }
}

TEST(JointRouting, RejectsBadConfiguration) {
  core::JointRoutingProblem problem = ring_problem(-1.0);
  EXPECT_THROW(core::JointRoutingOptimizer(problem, default_options()),
               fap::util::PreconditionError);
  problem = ring_problem(0.0);
  core::JointRoutingOptions options = default_options();
  options.damping = 0.0;
  EXPECT_THROW(core::JointRoutingOptimizer(problem, options),
               fap::util::PreconditionError);
}

}  // namespace
