// The transport's contract: exactly-once delivery to the application on
// top of a network that loses, duplicates, and reorders — plus capped
// exponential backoff, supersession via cancel_older, and crash
// survival of pending state.
#include "sim/reliable_transport.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/lossy_network.hpp"
#include "util/contracts.hpp"

namespace {

namespace sim = fap::sim;

// Runs `ticks` ticks and appends every fresh delivery.
std::vector<sim::Datagram> drain(sim::ReliableTransport& transport,
                                 std::size_t ticks) {
  std::vector<sim::Datagram> all;
  for (std::size_t t = 0; t < ticks; ++t) {
    for (sim::Datagram& d : transport.tick()) {
      all.push_back(std::move(d));
    }
  }
  return all;
}

TEST(ReliableTransport, LosslessDeliversOnceWithNoRetransmissions) {
  sim::LossyNetwork net(2, {});
  sim::ReliableTransport transport(net, {});
  transport.send(0, 1, 5, {3.5});
  const std::vector<sim::Datagram> got = drain(transport, 4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_EQ(got[0].to, 1u);
  EXPECT_EQ(got[0].tag, 5u);
  EXPECT_EQ(got[0].payload, (std::vector<double>{3.5}));
  EXPECT_EQ(transport.stats().retransmissions, 0u);
  EXPECT_EQ(transport.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(transport.pending(), 0u);  // ack retired it
}

TEST(ReliableTransport, RetransmitsThroughLossUntilDeliveredExactlyOnce) {
  sim::FaultConfig faults;
  faults.loss = 0.5;
  faults.seed = 77;
  sim::LossyNetwork net(4, faults);
  sim::ReliableTransport transport(net, {});
  // Every ordered pair sends a handful of messages.
  std::size_t sent = 0;
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from != to) {
        for (std::uint64_t k = 0; k < 5; ++k) {
          transport.send(from, to, k, {static_cast<double>(k)});
          ++sent;
        }
      }
    }
  }
  const std::vector<sim::Datagram> got = drain(transport, 400);
  EXPECT_EQ(got.size(), sent);  // all delivered...
  std::map<std::tuple<std::size_t, std::size_t, std::uint64_t>, int> count;
  for (const sim::Datagram& d : got) {
    ++count[{d.from, d.to, d.seq}];
  }
  for (const auto& [key, c] : count) {
    EXPECT_EQ(c, 1) << "duplicate application delivery";
  }
  EXPECT_GT(transport.stats().retransmissions, 0u);
  EXPECT_EQ(transport.pending(), 0u);
}

TEST(ReliableTransport, LostAcksCostSuppressedDuplicatesNotRedelivery) {
  // Loss high enough that some acks vanish: the sender retransmits data
  // the receiver already has, which must be suppressed, not redelivered.
  sim::FaultConfig faults;
  faults.loss = 0.6;
  faults.seed = 5;
  sim::LossyNetwork net(2, faults);
  sim::ReliableTransport transport(net, {});
  for (std::uint64_t k = 0; k < 30; ++k) {
    transport.send(0, 1, k, {1.0});
  }
  const std::vector<sim::Datagram> got = drain(transport, 600);
  EXPECT_EQ(got.size(), 30u);
  EXPECT_GT(transport.stats().duplicates_suppressed, 0u);
}

TEST(ReliableTransport, NetworkDuplicationIsInvisibleToTheApplication) {
  sim::FaultConfig faults;
  faults.duplicate = 1.0;
  sim::LossyNetwork net(2, faults);
  sim::ReliableTransport transport(net, {});
  transport.send(0, 1, 0, {1.0});
  transport.send(0, 1, 1, {2.0});
  const std::vector<sim::Datagram> got = drain(transport, 6);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(transport.stats().duplicates_suppressed, 2u);
}

TEST(ReliableTransport, BackoffDoublesAndCaps) {
  // A black hole: count the retransmissions of one message over a long
  // window and check the capped-exponential schedule. With timeout 2 and
  // cap 8 the re-send ticks are 2, 6(=2+4), 14(=6+8), 22, 30, ... — the
  // gap doubles until it pins at the cap.
  sim::FaultConfig faults;
  faults.loss = 1.0;
  sim::LossyNetwork net(2, faults);
  sim::TransportConfig config;
  config.retransmit_after_ticks = 2;
  config.max_backoff_ticks = 8;
  sim::ReliableTransport transport(net, config);
  transport.send(0, 1, 0, {1.0});

  std::vector<std::size_t> retransmit_ticks;
  std::size_t seen = 0;
  for (std::size_t t = 1; t <= 40; ++t) {
    transport.tick();
    if (transport.stats().retransmissions > seen) {
      seen = transport.stats().retransmissions;
      retransmit_ticks.push_back(t);
    }
  }
  EXPECT_EQ(retransmit_ticks,
            (std::vector<std::size_t>{2, 6, 14, 22, 30, 38}));
  EXPECT_EQ(transport.pending(), 1u);  // never acked, never given up
}

TEST(ReliableTransport, CancelOlderAbandonsSupersededTraffic) {
  sim::FaultConfig faults;
  faults.loss = 1.0;  // nothing ever arrives, pendings accumulate
  sim::LossyNetwork net(3, faults);
  sim::ReliableTransport transport(net, {});
  transport.send(0, 1, /*tag=*/1, {1.0});
  transport.send(0, 2, /*tag=*/1, {1.0});
  transport.send(0, 1, /*tag=*/2, {2.0});
  EXPECT_EQ(transport.pending(), 3u);
  transport.cancel_older(0, 2);
  EXPECT_EQ(transport.pending(), 1u);  // only the tag-2 send survives
  EXPECT_EQ(transport.stats().cancelled, 2u);
  const std::size_t before = transport.stats().retransmissions;
  drain(transport, 50);
  // Cancelled messages are never retransmitted again; the survivor is.
  EXPECT_GT(transport.stats().retransmissions, before);
  EXPECT_EQ(transport.pending(), 1u);
}

TEST(ReliableTransport, PendingStateSurvivesACrashAndResumesAtRejoin) {
  sim::FaultConfig faults;
  faults.crashes = {{0, 2, 20}};  // sender crashes after the first send
  sim::LossyNetwork net(2, faults);
  sim::ReliableTransport transport(net, {});
  transport.tick();  // tick 1: nothing yet
  transport.send(0, 1, 0, {1.0});  // in flight, due tick 2... sender up now
  // The datagram was accepted at tick 1 and delivers at tick 2 — but
  // let's force the retransmission path instead: crash kills nothing
  // in-flight here, so use a second message sent *during* the outage.
  std::vector<sim::Datagram> got = drain(transport, 30);
  ASSERT_EQ(got.size(), 1u);

  // Receiver crashes: delivery + acks blocked until rejoin.
  sim::FaultConfig faults2;
  faults2.crashes = {{1, 0, 12}};
  sim::LossyNetwork net2(2, faults2);
  sim::ReliableTransport transport2(net2, {});
  transport2.send(0, 1, 0, {4.0});
  got = drain(transport2, 10);  // receiver down through tick 10
  EXPECT_TRUE(got.empty());
  EXPECT_GT(transport2.stats().retransmissions, 0u);
  EXPECT_EQ(transport2.pending(), 1u);
  got = drain(transport2, 30);  // rejoin at tick 12
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, (std::vector<double>{4.0}));
  EXPECT_EQ(transport2.pending(), 0u);
}

TEST(ReliableTransport, RejectsMisuse) {
  sim::LossyNetwork net(2, {});
  sim::ReliableTransport transport(net, {});
  EXPECT_THROW(transport.send(0, 0, 0, {}), fap::util::PreconditionError);
  EXPECT_THROW(transport.send(0, 7, 0, {}), fap::util::PreconditionError);
  sim::TransportConfig bad;
  bad.retransmit_after_ticks = 0;
  EXPECT_THROW(sim::ReliableTransport(net, bad),
               fap::util::PreconditionError);
  sim::TransportConfig inverted;
  inverted.retransmit_after_ticks = 8;
  inverted.max_backoff_ticks = 4;
  EXPECT_THROW(sim::ReliableTransport(net, inverted),
               fap::util::PreconditionError);
}

}  // namespace
