// DES validation of the multi-file model: the mixture routing is exact
// and the shared-queue contention the Section 5.4 formulation claims is
// what a running system actually exhibits.
#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_file.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "sim/des.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;
namespace sim = fap::sim;

core::MultiFileModel two_file_model() {
  const net::Topology ring = net::make_ring(4, 1.0);
  return core::MultiFileModel(core::MultiFileProblem{
      net::all_pairs_shortest_paths(ring),
      {{0.15, 0.15, 0.05, 0.05}, {0.05, 0.05, 0.20, 0.10}},
      std::vector<double>(4, 1.5),
      /*k=*/1.0,
      fap::queueing::DelayModel()});
}

TEST(MultiFileDes, RoutingRowsAreMixturesAndDistributions) {
  const core::MultiFileModel model = two_file_model();
  std::vector<double> x(8, 0.0);
  x[model.index(0, 0)] = 1.0;  // file 0 at node 0
  x[model.index(1, 2)] = 0.5;  // file 1 split between nodes 2 and 3
  x[model.index(1, 3)] = 0.5;
  const sim::DesConfig config = sim::des_config_for(model, x);
  // Node 2 generates file-0 accesses at 0.05 and file-1 at 0.20:
  // P(target = 0) = 0.05/0.25, P(target = 2) = P(target = 3) = 0.1/0.25.
  EXPECT_NEAR(config.routing[2][0], 0.2, 1e-12);
  EXPECT_NEAR(config.routing[2][2], 0.4, 1e-12);
  EXPECT_NEAR(config.routing[2][3], 0.4, 1e-12);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(fap::util::sum(config.routing[j]), 1.0, 1e-9);
  }
  EXPECT_NEAR(config.lambda[2], 0.25, 1e-12);
}

TEST(MultiFileDes, MeasuredCostMatchesTheRateWeightedPrediction) {
  const core::MultiFileModel model = two_file_model();
  for (const auto& x : {
           // uniform fragmentation of both files
           std::vector<double>{0.25, 0.25, 0.25, 0.25,
                               0.25, 0.25, 0.25, 0.25},
           // file 0 at node 0, file 1 at node 2 (integral, colocated
           // demand)
           std::vector<double>{1, 0, 0, 0, 0, 0, 1, 0},
           // both files stacked on node 1: maximal contention
           std::vector<double>{0, 1, 0, 0, 0, 1, 0, 0},
       }) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 150000;
    config.seed = 555;
    const sim::DesResult result = sim::run_des(config);
    const double predicted = sim::multi_file_expected_access_cost(model, x);
    EXPECT_NEAR(result.measured_cost, predicted, 0.05 * predicted);
  }
}

TEST(MultiFileDes, ColocationContentionIsMeasuredNotJustModeled) {
  // The Section 5.4 claim, observed: stacking both files on one node
  // measurably inflates sojourn versus separating them, beyond what
  // communication explains.
  const core::MultiFileModel model = two_file_model();
  const std::vector<double> stacked{0, 1, 0, 0, 0, 1, 0, 0};
  const std::vector<double> separated{0, 1, 0, 0, 0, 0, 0, 1};
  auto sojourn_of = [&](const std::vector<double>& x) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 120000;
    config.seed = 777;
    return sim::run_des(config).sojourn.mean();
  };
  EXPECT_GT(sojourn_of(stacked), 1.3 * sojourn_of(separated));
}

TEST(MultiFileDes, PredictionHelperAgreesWithSingleFileSpecialCase) {
  // One file: the helper must equal SingleFileModel::cost.
  const net::Topology ring = net::make_ring(4, 1.0);
  const core::MultiFileModel multi(core::MultiFileProblem{
      net::all_pairs_shortest_paths(ring),
      {{0.25, 0.25, 0.25, 0.25}},
      std::vector<double>(4, 1.5),
      1.0,
      fap::queueing::DelayModel()});
  const core::SingleFileModel single(core::make_paper_ring_problem());
  for (const auto& x : {std::vector<double>{0.25, 0.25, 0.25, 0.25},
                        std::vector<double>{0.7, 0.1, 0.1, 0.1}}) {
    EXPECT_NEAR(sim::multi_file_expected_access_cost(multi, x),
                single.cost(x), 1e-12);
  }
}

}  // namespace
