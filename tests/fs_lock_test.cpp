// Lock-manager tests, including a verbatim reproduction of the Section 8.1
// predicate-lock deadlock scenario and the read-parallelism counterpoint.
#include "fs/lock_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using fap::fs::LockManager;
using fap::fs::LockMode;
using fap::fs::LockOutcome;
using fap::fs::TxnId;

TEST(LockManager, SharedLocksCoexist) {
  LockManager locks;
  EXPECT_EQ(locks.acquire(1, 10, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.acquire(2, 10, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.holders(10).size(), 2u);
}

TEST(LockManager, ExclusiveExcludesEverything) {
  LockManager locks;
  EXPECT_EQ(locks.acquire(1, 5, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks.acquire(2, 5, LockMode::kShared), LockOutcome::kQueued);
  EXPECT_EQ(locks.acquire(3, 5, LockMode::kExclusive), LockOutcome::kQueued);
  EXPECT_EQ(locks.waiters(5), (std::vector<TxnId>{2, 3}));
}

TEST(LockManager, ReleaseGrantsFifo) {
  LockManager locks;
  locks.acquire(1, 5, LockMode::kExclusive);
  locks.acquire(2, 5, LockMode::kShared);
  locks.acquire(3, 5, LockMode::kShared);
  locks.release_all(1);
  // Both queued shared requests become holders together.
  EXPECT_TRUE(locks.holds(2, 5));
  EXPECT_TRUE(locks.holds(3, 5));
}

TEST(LockManager, FifoFairnessBlocksLateSharedBehindExclusive) {
  LockManager locks;
  locks.acquire(1, 5, LockMode::kShared);
  locks.acquire(2, 5, LockMode::kExclusive);  // queued
  // A later shared request must not jump the queued exclusive.
  EXPECT_EQ(locks.acquire(3, 5, LockMode::kShared), LockOutcome::kQueued);
  locks.release_all(1);
  EXPECT_TRUE(locks.holds(2, 5));
  EXPECT_FALSE(locks.holds(3, 5));
  locks.release_all(2);
  EXPECT_TRUE(locks.holds(3, 5));
}

TEST(LockManager, ReentrantAcquireAndUpgrade) {
  LockManager locks;
  EXPECT_EQ(locks.acquire(1, 7, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.acquire(1, 7, LockMode::kShared), LockOutcome::kGranted);
  // Sole holder: upgrade succeeds.
  EXPECT_EQ(locks.acquire(1, 7, LockMode::kExclusive),
            LockOutcome::kGranted);
  // Exclusive holder asking for shared is trivially granted.
  EXPECT_EQ(locks.acquire(1, 7, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.held_count(), 1u);
}

TEST(LockManager, UpgradeWaitsWhenShared) {
  LockManager locks;
  locks.acquire(1, 7, LockMode::kShared);
  locks.acquire(2, 7, LockMode::kShared);
  EXPECT_EQ(locks.acquire(1, 7, LockMode::kExclusive), LockOutcome::kQueued);
  locks.release_all(2);
  // With txn 2 gone, the queued upgrade is granted.
  EXPECT_TRUE(locks.holds(1, 7));
  EXPECT_TRUE(locks.waiters(7).empty());
}

TEST(LockManager, Section81DeadlockScenario) {
  // The paper's scenario: ten records, five at node A (0-4) and five at
  // node B (5-9). Transactions C (id 1) and D (id 2) each need all ten.
  // Message order at A: C_A then D_A; at B: D_B then C_B.
  LockManager locks;  // one logical lock space; records model both nodes

  // C_A arrives at A: C locks records 0-4.
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(locks.acquire(1, r, LockMode::kExclusive),
              LockOutcome::kGranted);
  }
  // D_B arrives at B first: D locks records 5-9.
  for (std::size_t r = 5; r < 10; ++r) {
    EXPECT_EQ(locks.acquire(2, r, LockMode::kExclusive),
              LockOutcome::kGranted);
  }
  // D_A arrives at A: D must wait on C.
  EXPECT_EQ(locks.acquire(2, 0, LockMode::kExclusive), LockOutcome::kQueued);
  // C_B arrives at B: C must wait on D. "This would create a deadlock."
  EXPECT_EQ(locks.acquire(1, 5, LockMode::kExclusive), LockOutcome::kQueued);

  const std::vector<TxnId> cycle = locks.find_deadlock();
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), 1u) != cycle.end());
  EXPECT_TRUE(std::find(cycle.begin(), cycle.end(), 2u) != cycle.end());

  // The paper's remedy: abort one transaction (or pre-order lock
  // acquisition); releasing D breaks the cycle and C proceeds.
  locks.release_all(2);
  EXPECT_TRUE(locks.find_deadlock().empty());
  EXPECT_TRUE(locks.holds(1, 5));
}

TEST(LockManager, OrderedAcquisitionPreventsTheDeadlock) {
  // The same workload with a global lock order (both transactions lock
  // records in increasing order, waiting as needed) cannot deadlock.
  LockManager locks;
  for (std::size_t r = 0; r < 10; ++r) {
    locks.acquire(1, r, LockMode::kExclusive);
  }
  for (std::size_t r = 0; r < 10; ++r) {
    locks.acquire(2, r, LockMode::kExclusive);  // all queue behind txn 1
  }
  EXPECT_TRUE(locks.find_deadlock().empty());
  locks.release_all(1);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_TRUE(locks.holds(2, r));
  }
}

TEST(LockManager, ParallelReadsAcrossFragments) {
  // The paper's counterpoint: "read operations can be executed in
  // parallel at nodes A and B". Readers on disjoint and shared records
  // all proceed concurrently.
  LockManager locks;
  for (TxnId reader = 1; reader <= 4; ++reader) {
    for (std::size_t r = 0; r < 10; ++r) {
      EXPECT_EQ(locks.acquire(reader, r, LockMode::kShared),
                LockOutcome::kGranted);
    }
  }
  EXPECT_EQ(locks.held_count(), 40u);
  EXPECT_TRUE(locks.find_deadlock().empty());
}

TEST(LockManager, ThreeWayDeadlockDetected) {
  LockManager locks;
  locks.acquire(1, 100, LockMode::kExclusive);
  locks.acquire(2, 200, LockMode::kExclusive);
  locks.acquire(3, 300, LockMode::kExclusive);
  locks.acquire(1, 200, LockMode::kExclusive);  // 1 waits on 2
  locks.acquire(2, 300, LockMode::kExclusive);  // 2 waits on 3
  locks.acquire(3, 100, LockMode::kExclusive);  // 3 waits on 1
  const std::vector<TxnId> cycle = locks.find_deadlock();
  EXPECT_EQ(cycle.size(), 3u);
}

TEST(LockManager, NoFalsePositiveDeadlocks) {
  LockManager locks;
  locks.acquire(1, 1, LockMode::kExclusive);
  locks.acquire(2, 1, LockMode::kExclusive);  // simple wait, no cycle
  locks.acquire(2, 2, LockMode::kExclusive);
  locks.acquire(3, 2, LockMode::kShared);     // chain 3 -> 2 -> 1
  EXPECT_TRUE(locks.find_deadlock().empty());
}

TEST(LockManager, ReleaseAllRemovesWaits) {
  LockManager locks;
  locks.acquire(1, 1, LockMode::kExclusive);
  locks.acquire(2, 1, LockMode::kExclusive);
  locks.release_all(2);  // waiting txn gives up
  EXPECT_TRUE(locks.waiters(1).empty());
  EXPECT_TRUE(locks.holds(1, 1));
}

}  // namespace
