#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using fap::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(11);
  constexpr std::uint64_t kN = 7;
  std::vector<int> counts(kN, 0);
  constexpr int kSamples = 70000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t idx = rng.uniform_index(kN);
    ASSERT_LT(idx, kN);
    ++counts[idx];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / static_cast<int>(kN), 600);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double rate = 2.5;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 5e-3);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 3.0, 2e-2);
  EXPECT_NEAR(var, 4.0, 8e-2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  for (const std::size_t n : {1u, 2u, 5u, 64u}) {
    const std::vector<std::size_t> perm = rng.permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::set<std::size_t> values(perm.begin(), perm.end());
    EXPECT_EQ(values.size(), n);
    if (n > 0) {
      EXPECT_EQ(*values.begin(), 0u);
      EXPECT_EQ(*values.rbegin(), n - 1);
    }
  }
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(29);
  // Over many draws of permutation(4), all first elements should occur.
  std::set<std::size_t> firsts;
  for (int i = 0; i < 200; ++i) {
    firsts.insert(rng.permutation(4).front());
  }
  EXPECT_EQ(firsts.size(), 4u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
