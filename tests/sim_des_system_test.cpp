// Tests for the incremental simulation engine: windowing semantics,
// mid-run rewiring, and consistency with the batch run_des wrapper.
#include "sim/des_system.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/single_file.hpp"
#include "queueing/delay.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

sim::DesConfig paper_config(const std::vector<double>& x) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::DesConfig config = sim::des_config_for(model, x);
  config.seed = 321;
  return config;
}

TEST(DesSystem, AdvanceUntilMovesTheClockExactly) {
  sim::DesSystem system(paper_config({0.25, 0.25, 0.25, 0.25}));
  EXPECT_DOUBLE_EQ(system.now(), 0.0);
  system.advance_until(123.5);
  EXPECT_DOUBLE_EQ(system.now(), 123.5);
  EXPECT_THROW(system.advance_until(100.0), fap::util::PreconditionError);
}

TEST(DesSystem, AdvanceCompletionsCountsCompletions) {
  sim::DesSystem system(paper_config({0.25, 0.25, 0.25, 0.25}));
  system.reset_window();
  const std::size_t made = system.advance_completions(5000);
  EXPECT_EQ(made, 5000u);
  // All completions after the window opened at t=0 are measured.
  EXPECT_EQ(system.window().completions, 5000u);
}

TEST(DesSystem, WindowExcludesPreWindowArrivals) {
  sim::DesSystem system(paper_config({0.25, 0.25, 0.25, 0.25}));
  system.advance_until(200.0);
  system.reset_window();
  system.advance_completions(2000);
  // Accesses that arrived before t=200 but completed after must not be
  // measured: every measured sojourn is consistent with a post-200
  // arrival (weak check: window has fewer completions than advanced).
  EXPECT_LE(system.window().completions, 2000u);
  EXPECT_GT(system.window().completions, 1500u);
}

TEST(DesSystem, CompletionAttributedWindowsPartitionAllCompletions) {
  // With window_by_completion, a reset never loses the in-flight tail:
  // each completion lands in exactly the window it departs in, so the
  // window counts sum to the completions advanced — the attribution rule
  // cumulative trace-serving statistics rely on.
  sim::DesConfig config = paper_config({0.25, 0.25, 0.25, 0.25});
  config.window_by_completion = true;
  sim::DesSystem system(std::move(config));
  system.reset_window();
  std::size_t advanced = 0;
  std::size_t counted = 0;
  for (int w = 0; w < 4; ++w) {
    advanced += system.advance_completions(1500);
    counted += system.window().completions;
    system.reset_window();
  }
  EXPECT_EQ(advanced, 4u * 1500u);
  EXPECT_EQ(counted, advanced);
}

TEST(DesSystem, WindowStatsMatchTheory) {
  sim::DesConfig config;
  config.lambda = {0.75};
  config.mu = {1.5};
  config.routing = {{1.0}};
  config.comm_cost = {{0.0}};
  config.seed = 99;
  sim::DesSystem system(config);
  system.advance_until(500.0);
  system.reset_window();
  system.advance_completions(150000);
  const sim::WindowStats& window = system.window();
  EXPECT_NEAR(window.sojourn.mean(),
              fap::queueing::mm1_sojourn_time(0.75, 1.5),
              0.06 * fap::queueing::mm1_sojourn_time(0.75, 1.5));
  EXPECT_NEAR(window.node[0].utilization, 0.5, 0.02);
  EXPECT_NEAR(window.node[0].observed_arrival_rate, 0.75, 0.03);
}

TEST(DesSystem, SetRoutingRedirectsTraffic) {
  // Start with everything served at node 0; rewire to node 2 mid-run and
  // verify the new window's arrivals follow.
  sim::DesSystem system(paper_config({1.0, 0.0, 0.0, 0.0}));
  system.advance_until(500.0);
  system.reset_window();
  system.advance_completions(20000);
  EXPECT_GT(system.window().node[0].observed_arrival_rate, 0.9);

  std::vector<std::vector<double>> new_routing(
      4, std::vector<double>{0.0, 0.0, 1.0, 0.0});
  system.set_routing(new_routing);
  system.advance_until(system.now() + 100.0);  // drain the old regime
  system.reset_window();
  system.advance_completions(20000);
  EXPECT_GT(system.window().node[2].observed_arrival_rate, 0.9);
  EXPECT_LT(system.window().node[0].observed_arrival_rate, 0.01);
}

TEST(DesSystem, RewiringReducesDelayWhenLoadIsSpread) {
  // Concentrated allocation queues badly; spreading it mid-run must
  // reduce the measured sojourn in the next window.
  sim::DesSystem system(paper_config({0.0, 0.0, 0.0, 1.0}));
  system.advance_until(300.0);
  system.reset_window();
  system.advance_completions(40000);
  const double concentrated_sojourn = system.window().sojourn.mean();

  const core::SingleFileModel model(core::make_paper_ring_problem());
  system.set_routing(
      sim::des_config_for(model, {0.25, 0.25, 0.25, 0.25}).routing);
  system.advance_until(system.now() + 200.0);
  system.reset_window();
  system.advance_completions(40000);
  const double spread_sojourn = system.window().sojourn.mean();

  // Theory: 1/(μ-λ) = 2.0 vs 1/(μ-λ/4) = 0.8.
  EXPECT_GT(concentrated_sojourn, 1.7);
  EXPECT_LT(spread_sojourn, 1.0);
}

TEST(DesSystem, UtilizationIncludesInProgressService) {
  // A deterministic heavy service keeps the server busy; utilization must
  // count the in-progress service at window inspection time.
  sim::DesConfig config;
  config.lambda = {0.9};
  config.mu = {1.0};
  config.routing = {{1.0}};
  config.comm_cost = {{0.0}};
  config.seed = 5;
  sim::DesSystem system(config);
  system.advance_until(1000.0);
  system.reset_window();
  system.advance_until(2000.0);
  EXPECT_NEAR(system.window().node[0].utilization, 0.9, 0.05);
}

TEST(DesSystem, LogRespectsWindows) {
  sim::DesConfig config = paper_config({0.25, 0.25, 0.25, 0.25});
  config.record_log = true;
  sim::DesSystem system(config);
  system.advance_until(100.0);
  system.reset_window();
  system.advance_completions(500);
  const std::size_t first_window = system.window().log.size();
  EXPECT_GT(first_window, 0u);
  system.reset_window();
  EXPECT_TRUE(system.window().log.empty());
}

TEST(DesSystem, MoveSemantics) {
  sim::DesSystem a(paper_config({0.25, 0.25, 0.25, 0.25}));
  a.advance_until(50.0);
  sim::DesSystem b(std::move(a));
  EXPECT_DOUBLE_EQ(b.now(), 50.0);
  b.advance_until(60.0);
  EXPECT_DOUBLE_EQ(b.now(), 60.0);
}

TEST(DesSystem, RejectsBadRewiring) {
  sim::DesSystem system(paper_config({0.25, 0.25, 0.25, 0.25}));
  EXPECT_THROW(system.set_routing({{1.0}}), fap::util::PreconditionError);
  EXPECT_THROW(system.set_routing(std::vector<std::vector<double>>(
                   4, std::vector<double>{0.5, 0.0, 0.0, 0.0})),
               fap::util::PreconditionError);
}

TEST(DesSystem, DefaultEventBudgetMatchesHistoricalValue) {
  // The config knobs replaced a hard-coded `1000 * count + 1000000`
  // budget; the defaults must preserve it so existing runs are unchanged.
  const sim::DesConfig config;
  EXPECT_EQ(config.event_budget_per_completion, 1000u);
  EXPECT_EQ(config.event_budget_floor, 1000u * 1000u);
}

TEST(DesSystem, ExhaustedEventBudgetFailsLoudly) {
  // A tiny configured budget trips quickly — and loudly, via
  // InvariantError — when no completions can be made.
  sim::DesConfig config = paper_config({0.25, 0.25, 0.25, 0.25});
  config.event_budget_per_completion = 2;
  config.event_budget_floor = 100;
  sim::DesSystem system(config);
  system.advance_until(50.0);
  for (std::size_t i = 0; i < 4; ++i) {
    system.set_node_failed(i, true);
  }
  EXPECT_THROW(system.advance_completions(5), fap::util::InvariantError);
}

TEST(DesSystem, GenerousEventBudgetIsNotTrippedByNormalRuns) {
  // Shrinking the budget to just above what a healthy run needs must not
  // fire: the guard only catches genuine non-progress. A completion takes
  // a handful of events (generate + arrive + departure), far under 50.
  sim::DesConfig config = paper_config({0.25, 0.25, 0.25, 0.25});
  config.event_budget_per_completion = 50;
  config.event_budget_floor = 100;
  sim::DesSystem system(config);
  system.advance_until(50.0);
  EXPECT_EQ(system.advance_completions(2000), 2000u);
}

}  // namespace
