// Tests for the optimal-copy-count sweep (Section 8.2's open question).
#include "core/copy_count.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;

core::CopyCountOptions quick_options(double storage) {
  core::CopyCountOptions options;
  options.storage_cost_per_copy = storage;
  options.inner.alpha = 0.08;
  options.inner.max_iterations = 800;
  options.inner.decay_interval = 20;
  return options;
}

TEST(CopyCount, SweepCoversAllCounts) {
  const core::RingProblem base =
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0}, /*copies=*/1.0);
  const core::CopyCountResult result =
      core::optimal_copy_count(base, quick_options(0.1));
  ASSERT_EQ(result.sweep.size(), 4u);
  for (std::size_t m = 1; m <= 4; ++m) {
    EXPECT_EQ(result.sweep[m - 1].copies, m);
    EXPECT_NEAR(result.sweep[m - 1].storage_cost, 0.1 * m, 1e-12);
    EXPECT_NEAR(result.sweep[m - 1].total_cost,
                result.sweep[m - 1].access_cost +
                    result.sweep[m - 1].storage_cost,
                1e-12);
  }
  EXPECT_GE(result.best_copies, 1u);
  EXPECT_LE(result.best_copies, 4u);
}

TEST(CopyCount, AccessCostDecreasesWithMoreCopies) {
  // Without storage cost, more copies can only help (shorter walks, more
  // parallel service).
  const core::RingProblem base =
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0}, 1.0);
  const core::CopyCountResult result =
      core::optimal_copy_count(base, quick_options(0.0));
  for (std::size_t m = 1; m < result.sweep.size(); ++m) {
    EXPECT_LE(result.sweep[m].access_cost,
              result.sweep[m - 1].access_cost + 1e-6)
        << "m=" << m + 1;
  }
  EXPECT_EQ(result.best_copies, 4u);
}

TEST(CopyCount, ExpensiveStorageFavorsFewCopies) {
  const core::RingProblem base =
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0}, 1.0);
  const core::CopyCountResult cheap =
      core::optimal_copy_count(base, quick_options(0.001));
  const core::CopyCountResult expensive =
      core::optimal_copy_count(base, quick_options(5.0));
  EXPECT_GE(cheap.best_copies, expensive.best_copies);
  EXPECT_EQ(expensive.best_copies, 1u);
}

TEST(CopyCount, BestEntryIsTheMinimum) {
  const core::RingProblem base = fap::testing::random_ring_problem(3, 5, 1.0);
  const core::CopyCountResult result =
      core::optimal_copy_count(base, quick_options(0.2));
  for (const core::CopyCountEntry& entry : result.sweep) {
    EXPECT_GE(entry.total_cost, result.best_total_cost - 1e-12);
  }
}

TEST(CopyCount, RespectsMaxCopiesOption) {
  const core::RingProblem base =
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0}, 1.0);
  core::CopyCountOptions options = quick_options(0.1);
  options.max_copies = 2;
  const core::CopyCountResult result =
      core::optimal_copy_count(base, options);
  EXPECT_EQ(result.sweep.size(), 2u);
}

TEST(CopyCount, RejectsNegativeStorageCost) {
  const core::RingProblem base =
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0}, 1.0);
  core::CopyCountOptions options = quick_options(-1.0);
  EXPECT_THROW(core::optimal_copy_count(base, options),
               fap::util::PreconditionError);
}

}  // namespace
