// Failure-injection tests: the Section 4(a) graceful-degradation claim —
// "If the file is distributed over a number of nodes then failure of one
// or more nodes only means that the portions of the file stored at those
// nodes cannot be accessed."
#include <gtest/gtest.h>

#include "core/single_file.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

sim::DesSystem make_system(const std::vector<double>& x,
                           std::uint64_t seed = 404) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::DesConfig config = sim::des_config_for(model, x);
  config.seed = seed;
  return sim::DesSystem(config);
}

TEST(FailureInjection, FragmentedFileDegradesGracefully) {
  // Uniform fragmentation: one node down loses ~25% of accesses.
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(200.0);
  system.set_node_failed(2, true);
  system.reset_window();
  system.advance_completions(60000);
  EXPECT_NEAR(system.window().availability(), 0.75, 0.02);
}

TEST(FailureInjection, IntegralPlacementFailsCompletely) {
  // Whole file at node 3: its failure disables every access.
  sim::DesSystem system = make_system({0.0, 0.0, 0.0, 1.0});
  system.advance_until(200.0);
  system.set_node_failed(3, true);
  system.reset_window();
  // Only pre-failure queued work can complete; everything new is lost.
  system.advance_until(system.now() + 2000.0);
  EXPECT_LT(system.window().availability(), 0.01);
  EXPECT_GT(system.window().failed_accesses, 1000u);
}

TEST(FailureInjection, AvailabilityTracksTheSurvivingFraction) {
  for (const double fraction_at_failed : {0.1, 0.4, 0.7}) {
    const double rest = (1.0 - fraction_at_failed) / 3.0;
    sim::DesSystem system =
        make_system({rest, fraction_at_failed, rest, rest});
    system.advance_until(200.0);
    system.set_node_failed(1, true);
    system.reset_window();
    system.advance_completions(
        static_cast<std::size_t>(60000 * (1.0 - fraction_at_failed)));
    EXPECT_NEAR(system.window().availability(), 1.0 - fraction_at_failed,
                0.02)
        << "fraction " << fraction_at_failed;
  }
}

TEST(FailureInjection, RepairRestoresFullAvailability) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(200.0);
  system.set_node_failed(0, true);
  system.advance_until(system.now() + 500.0);
  system.set_node_failed(0, false);
  system.advance_until(system.now() + 50.0);
  system.reset_window();
  system.advance_completions(40000);
  EXPECT_NEAR(system.window().availability(), 1.0, 1e-9);
  EXPECT_GT(system.window().node[0].observed_arrival_rate, 0.2);
}

TEST(FailureInjection, QueuedWorkAtFailedNodeIsLost) {
  // Overload node 0, fail it, and confirm its queued accesses are counted
  // as failed rather than completed.
  sim::DesSystem system = make_system({1.0, 0.0, 0.0, 0.0});
  system.advance_until(300.0);
  system.reset_window();
  system.advance_until(system.now() + 50.0);
  const std::size_t completed_before = system.window().completions;
  system.set_node_failed(0, true);
  EXPECT_GT(system.window().failed_accesses, 0u);  // queue was non-empty
  system.advance_until(system.now() + 50.0);
  // No further completions after the only holder died.
  EXPECT_EQ(system.window().completions, completed_before);
}

TEST(FailureInjection, StaleDepartureEventsAreVoidAfterRepair) {
  // Fail and immediately repair while a service was in flight; the stale
  // departure event must not complete anything or corrupt state.
  sim::DesSystem system = make_system({1.0, 0.0, 0.0, 0.0});
  system.advance_until(300.0);
  system.set_node_failed(0, true);
  system.set_node_failed(0, false);
  system.reset_window();
  system.advance_completions(10000);
  EXPECT_EQ(system.window().completions, 10000u);
  // Sojourn times stay physical (no negative / garbage values).
  EXPECT_GT(system.window().sojourn.min(), 0.0);
}

TEST(FailureInjection, AllNodesFailedIsDetected) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(100.0);
  for (std::size_t i = 0; i < 4; ++i) {
    system.set_node_failed(i, true);
  }
  EXPECT_THROW(system.advance_completions(10), fap::util::InvariantError);
}

TEST(FailureInjection, RejectsOutOfRangeNode) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  EXPECT_THROW(system.set_node_failed(4, true),
               fap::util::PreconditionError);
}

}  // namespace
