// Failure-injection tests: the Section 4(a) graceful-degradation claim —
// "If the file is distributed over a number of nodes then failure of one
// or more nodes only means that the portions of the file stored at those
// nodes cannot be accessed."
#include <gtest/gtest.h>

#include "core/single_file.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

sim::DesSystem make_system(const std::vector<double>& x,
                           std::uint64_t seed = 404) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::DesConfig config = sim::des_config_for(model, x);
  config.seed = seed;
  return sim::DesSystem(config);
}

TEST(FailureInjection, FragmentedFileDegradesGracefully) {
  // Uniform fragmentation: one node down loses ~25% of accesses.
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(200.0);
  system.set_node_failed(2, true);
  system.reset_window();
  system.advance_completions(60000);
  EXPECT_NEAR(system.window().availability(), 0.75, 0.02);
}

TEST(FailureInjection, IntegralPlacementFailsCompletely) {
  // Whole file at node 3: its failure disables every access.
  sim::DesSystem system = make_system({0.0, 0.0, 0.0, 1.0});
  system.advance_until(200.0);
  system.set_node_failed(3, true);
  system.reset_window();
  // Only pre-failure queued work can complete; everything new is lost.
  system.advance_until(system.now() + 2000.0);
  EXPECT_LT(system.window().availability(), 0.01);
  EXPECT_GT(system.window().failed_accesses, 1000u);
}

TEST(FailureInjection, AvailabilityTracksTheSurvivingFraction) {
  for (const double fraction_at_failed : {0.1, 0.4, 0.7}) {
    const double rest = (1.0 - fraction_at_failed) / 3.0;
    sim::DesSystem system =
        make_system({rest, fraction_at_failed, rest, rest});
    system.advance_until(200.0);
    system.set_node_failed(1, true);
    system.reset_window();
    system.advance_completions(
        static_cast<std::size_t>(60000 * (1.0 - fraction_at_failed)));
    EXPECT_NEAR(system.window().availability(), 1.0 - fraction_at_failed,
                0.02)
        << "fraction " << fraction_at_failed;
  }
}

TEST(FailureInjection, RepairRestoresFullAvailability) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(200.0);
  system.set_node_failed(0, true);
  system.advance_until(system.now() + 500.0);
  system.set_node_failed(0, false);
  system.advance_until(system.now() + 50.0);
  system.reset_window();
  system.advance_completions(40000);
  EXPECT_NEAR(system.window().availability(), 1.0, 1e-9);
  EXPECT_GT(system.window().node[0].observed_arrival_rate, 0.2);
}

TEST(FailureInjection, QueuedWorkAtFailedNodeIsLost) {
  // Overload node 0, fail it, and confirm its queued accesses are counted
  // as failed rather than completed.
  sim::DesSystem system = make_system({1.0, 0.0, 0.0, 0.0});
  system.advance_until(300.0);
  system.reset_window();
  system.advance_until(system.now() + 50.0);
  const std::size_t completed_before = system.window().completions;
  system.set_node_failed(0, true);
  EXPECT_GT(system.window().failed_accesses, 0u);  // queue was non-empty
  system.advance_until(system.now() + 50.0);
  // No further completions after the only holder died.
  EXPECT_EQ(system.window().completions, completed_before);
}

TEST(FailureInjection, StaleDepartureEventsAreVoidAfterRepair) {
  // Fail and immediately repair while a service was in flight; the stale
  // departure event must not complete anything or corrupt state.
  sim::DesSystem system = make_system({1.0, 0.0, 0.0, 0.0});
  system.advance_until(300.0);
  system.set_node_failed(0, true);
  system.set_node_failed(0, false);
  system.reset_window();
  system.advance_completions(10000);
  EXPECT_EQ(system.window().completions, 10000u);
  // Sojourn times stay physical (no negative / garbage values).
  EXPECT_GT(system.window().sojourn.min(), 0.0);
}

TEST(FailureInjection, AllNodesFailedIsDetected) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  system.advance_until(100.0);
  for (std::size_t i = 0; i < 4; ++i) {
    system.set_node_failed(i, true);
  }
  EXPECT_THROW(system.advance_completions(10), fap::util::InvariantError);
}

TEST(FailureInjection, RejectsOutOfRangeNode) {
  sim::DesSystem system = make_system({0.25, 0.25, 0.25, 0.25});
  EXPECT_THROW(system.set_node_failed(4, true),
               fap::util::PreconditionError);
}

TEST(FailureInjection, EpochVoidingStressKeepsAccountsBalanced) {
  // Kill/restore nodes repeatedly under heavy load and check that (a) a
  // dead node receives no departures — every voided epoch's in-flight
  // departure events are discarded, never applied — and (b) the lost-job
  // accounting balances exactly: once every node is down, each measured
  // arrival was either completed or counted lost, with nothing dropped
  // or double-counted.
  const std::size_t n = 4;
  sim::DesConfig config;
  config.lambda.assign(n, 1.0);
  config.routing.assign(n, std::vector<double>(n, 0.25));
  config.comm_cost.assign(n, std::vector<double>(n, 1.0));
  // rho ~ 0.9 per node: deep queues, so failures void real work.
  config.mu.assign(n, 4.0 * 0.25 / 0.9);
  config.seed = 97;
  sim::DesSystem system(config);

  // Open the window at t=0 so every access that ever enters the system
  // is measured — the precondition for the exact balance below.
  system.reset_window();

  // Routing that avoids `down`, so accesses are never lost in flight and
  // the only loss mechanism is the kill itself.
  const auto routing_avoiding = [n](std::size_t down) {
    std::vector<double> row(n, 1.0 / static_cast<double>(n - 1));
    row[down] = 0.0;
    return std::vector<std::vector<double>>(n, row);
  };
  const std::vector<std::vector<double>> routing_all(
      n, std::vector<double>(n, 0.25));

  for (std::size_t cycle = 0; cycle < 8; ++cycle) {
    system.advance_completions(600);
    const std::size_t victim = cycle % n;
    system.set_routing(routing_avoiding(victim));
    system.set_node_failed(victim, true);
    const sim::WindowStats& at_kill = system.window();
    const std::size_t sojourns_at_kill =
        at_kill.node[victim].sojourn.count();
    const std::size_t arrivals_at_kill = at_kill.node[victim].arrivals;
    const std::size_t failed_at_kill = at_kill.failed_accesses;

    system.advance_completions(400);

    // No departure for a voided epoch was applied: the dead node's
    // per-node statistics are frozen while the rest of the system runs.
    const sim::WindowStats& while_down = system.window();
    EXPECT_EQ(while_down.node[victim].sojourn.count(), sojourns_at_kill);
    EXPECT_EQ(while_down.node[victim].arrivals, arrivals_at_kill);
    // ... and nothing further was lost (routing avoids the dead node).
    EXPECT_EQ(while_down.failed_accesses, failed_at_kill);

    system.set_node_failed(victim, false);
    system.set_routing(routing_all);
  }

  // Final reckoning: kill everything at once (no time passes), so every
  // in-system job is accounted lost and nothing is left in flight.
  for (std::size_t i = 0; i < n; ++i) {
    system.set_node_failed(i, true);
  }
  const sim::WindowStats& window = system.window();
  std::size_t total_arrivals = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_arrivals += window.node[i].arrivals;
  }
  EXPECT_GT(window.completions, 0u);
  EXPECT_GT(window.failed_accesses, 0u);
  EXPECT_EQ(total_arrivals, window.completions + window.failed_accesses);
  EXPECT_GT(window.availability(), 0.0);
  EXPECT_LT(window.availability(), 1.0);
}

}  // namespace
