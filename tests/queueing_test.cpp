#include "queueing/delay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace queueing = fap::queueing;
using fap::util::PreconditionError;
using queueing::DelayModel;

TEST(MM1Formulas, ClassicValues) {
  // ρ = 0.5: T = 1/(μ-λ) = 2/μ; L = ρ/(1-ρ) = 1.
  EXPECT_DOUBLE_EQ(queueing::mm1_sojourn_time(0.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(queueing::mm1_waiting_time(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(queueing::mm1_mean_queue_length(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(queueing::mm1_utilization(0.5, 1.0), 0.5);
}

TEST(MM1Formulas, LittleLawConsistency) {
  // L = λ T must hold.
  const double lambda = 0.7;
  const double mu = 1.3;
  EXPECT_NEAR(queueing::mm1_mean_queue_length(lambda, mu),
              lambda * queueing::mm1_sojourn_time(lambda, mu), 1e-12);
}

TEST(MM1Formulas, RejectsUnstableInput) {
  EXPECT_THROW(queueing::mm1_sojourn_time(2.0, 1.0), PreconditionError);
  EXPECT_THROW(queueing::mm1_mean_queue_length(1.0, 1.0), PreconditionError);
}

TEST(DelayModel, MM1MatchesClosedForm) {
  const DelayModel model = DelayModel::mm1();
  EXPECT_DOUBLE_EQ(model.sojourn(0.25, 1.5), 1.0 / 1.25);
  EXPECT_DOUBLE_EQ(model.d_sojourn(0.25, 1.5), 1.0 / (1.25 * 1.25));
  EXPECT_DOUBLE_EQ(model.d2_sojourn(0.25, 1.5), 2.0 / (1.25 * 1.25 * 1.25));
}

TEST(DelayModel, MG1WithScvOneIsMM1) {
  const DelayModel mg1 = DelayModel::mg1(1.0);
  const DelayModel mm1 = DelayModel::mm1();
  for (const double a : {0.0, 0.3, 0.9, 1.2}) {
    EXPECT_NEAR(mg1.sojourn(a, 1.5), mm1.sojourn(a, 1.5), 1e-12);
    EXPECT_NEAR(mg1.d_sojourn(a, 1.5), mm1.d_sojourn(a, 1.5), 1e-12);
  }
}

TEST(DelayModel, MD1HasHalfTheQueueingDelay) {
  // Pollaczek–Khinchine: M/D/1 waiting time is half of M/M/1's.
  const DelayModel md1 = DelayModel::md1();
  const DelayModel mm1 = DelayModel::mm1();
  const double a = 0.8;
  const double mu = 1.5;
  const double wait_md1 = md1.sojourn(a, mu) - 1.0 / mu;
  const double wait_mm1 = mm1.sojourn(a, mu) - 1.0 / mu;
  EXPECT_NEAR(wait_md1, 0.5 * wait_mm1, 1e-12);
}

TEST(DelayModel, DerivativesMatchNumericDifferentiation) {
  for (const double scv : {0.0, 0.5, 1.0, 2.5}) {
    const DelayModel model = DelayModel::mg1(scv);
    const double mu = 1.5;
    for (const double a : {0.1, 0.6, 1.1}) {
      const auto f = [&](const std::vector<double>& v) {
        return model.sojourn(v[0], mu);
      };
      EXPECT_NEAR(model.d_sojourn(a, mu),
                  fap::util::numeric_gradient(f, {a})[0], 1e-5)
          << "scv=" << scv << " a=" << a;
      EXPECT_NEAR(model.d2_sojourn(a, mu),
                  fap::util::numeric_second_derivative(f, {a}, 0), 1e-4)
          << "scv=" << scv << " a=" << a;
    }
  }
}

TEST(DelayModel, SojournIncreasingAndConvex) {
  const DelayModel model = DelayModel::mm1();
  double previous = model.sojourn(0.0, 2.0);
  double previous_slope = model.d_sojourn(0.0, 2.0);
  for (double a = 0.1; a < 1.9; a += 0.1) {
    const double value = model.sojourn(a, 2.0);
    const double slope = model.d_sojourn(a, 2.0);
    EXPECT_GT(value, previous);
    EXPECT_GE(slope, previous_slope);
    previous = value;
    previous_slope = slope;
  }
}

TEST(DelayModel, LinearExtensionIsContinuousAndSmoothAtTheKnee) {
  const DelayModel pure = DelayModel::mm1();
  const DelayModel extended = DelayModel::mm1(/*rho_max=*/0.8);
  const double mu = 2.0;
  const double knee = 0.8 * mu;
  // Value and slope continuous at the knee.
  EXPECT_NEAR(extended.sojourn(knee, mu), pure.sojourn(knee, mu), 1e-12);
  EXPECT_NEAR(extended.d_sojourn(knee, mu), pure.d_sojourn(knee, mu), 1e-12);
  EXPECT_NEAR(extended.sojourn(knee - 1e-9, mu),
              extended.sojourn(knee + 1e-9, mu), 1e-6);
  // Beyond the knee: linear (zero curvature), finite even past μ.
  EXPECT_DOUBLE_EQ(extended.d2_sojourn(knee + 0.5, mu), 0.0);
  EXPECT_GT(extended.sojourn(3.0 * mu, mu), extended.sojourn(knee, mu));
  EXPECT_TRUE(std::isfinite(extended.sojourn(10.0 * mu, mu)));
}

TEST(DelayModel, BelowKneeMatchesPureModel) {
  const DelayModel pure = DelayModel::mm1();
  const DelayModel extended = DelayModel::mm1(0.9);
  for (const double a : {0.0, 0.5, 1.0, 1.7}) {
    EXPECT_DOUBLE_EQ(extended.sojourn(a, 2.0), pure.sojourn(a, 2.0));
  }
}

TEST(DelayModel, PureModelRejectsOverload) {
  const DelayModel pure = DelayModel::mm1();
  EXPECT_THROW(pure.sojourn(2.0, 2.0), PreconditionError);
  EXPECT_THROW(pure.d_sojourn(2.5, 2.0), PreconditionError);
  const DelayModel extended = DelayModel::mm1(0.9);
  EXPECT_NO_THROW(extended.sojourn(2.5, 2.0));
}

TEST(DelayModel, RejectsBadParameters) {
  EXPECT_THROW(DelayModel(queueing::Discipline::kMG1, -1.0),
               PreconditionError);
  EXPECT_THROW(DelayModel(queueing::Discipline::kMM1, 1.0, 0.0),
               PreconditionError);
  EXPECT_THROW(DelayModel(queueing::Discipline::kMM1, 1.0, 1.5),
               PreconditionError);
  const DelayModel model = DelayModel::mm1();
  EXPECT_THROW(model.sojourn(-0.1, 1.0), PreconditionError);
  EXPECT_THROW(model.sojourn(0.1, 0.0), PreconditionError);
}

TEST(DelayModel, DisciplineForcesScv) {
  EXPECT_DOUBLE_EQ(DelayModel(queueing::Discipline::kMM1, 7.0).scv(), 1.0);
  EXPECT_DOUBLE_EQ(DelayModel(queueing::Discipline::kMD1, 7.0).scv(), 0.0);
  EXPECT_DOUBLE_EQ(DelayModel::mg1(2.5).scv(), 2.5);
}

}  // namespace
