// The protocol realization must compute exactly what the centralized
// driver computes, and its message accounting must match the paper's
// Section 5.1 / 7.3 observations.
#include "sim/protocol_sim.hpp"

#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "test_helpers.hpp"
#include "util/numeric.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;
namespace sim = fap::sim;

core::AllocatorOptions paper_options() {
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  options.record_trace = true;
  return options;
}

TEST(Protocol, TrajectoryIsBitwiseEqualToCentralizedDriver) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config;
  config.algorithm = paper_options();
  config.record_cost_trace = true;
  const sim::ProtocolResult protocol =
      sim::run_protocol(model, {0.8, 0.1, 0.1, 0.0}, config);

  const core::ResourceDirectedAllocator allocator(model, paper_options());
  const core::AllocationResult central = allocator.run({0.8, 0.1, 0.1, 0.0});

  ASSERT_TRUE(protocol.converged);
  ASSERT_TRUE(central.converged);
  ASSERT_EQ(protocol.x.size(), central.x.size());
  for (std::size_t i = 0; i < protocol.x.size(); ++i) {
    EXPECT_EQ(protocol.x[i], central.x[i]) << "component " << i;
  }
  // Rounds = reallocation steps + the final round that detects termination.
  EXPECT_EQ(protocol.rounds, central.iterations + 1);
}

TEST(Protocol, WorksOnRandomProblems) {
  for (const std::uint64_t seed : {2u, 9u, 31u}) {
    const core::SingleFileModel model(
        fap::testing::random_single_file_problem(seed, 6));
    sim::ProtocolConfig config;
    config.algorithm.alpha = 0.1;
    config.algorithm.epsilon = 1e-5;
    config.algorithm.max_iterations = 100000;
    const std::vector<double> start =
        fap::testing::random_feasible(model, seed);
    const sim::ProtocolResult result =
        sim::run_protocol(model, start, config);
    EXPECT_TRUE(result.converged) << "seed " << seed;
    EXPECT_LT(result.cost, model.cost(start)) << "seed " << seed;
    EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-9);
  }
}

TEST(Protocol, MessageCountsBroadcastScheme) {
  sim::ProtocolConfig config;
  config.scheme = sim::AggregationScheme::kBroadcast;
  const sim::RoundMessageCost cost = sim::round_message_cost(10, config);
  EXPECT_EQ(cost.point_to_point, 90u);     // N(N-1)
  EXPECT_EQ(cost.broadcast_medium, 10u);   // one transmission per node
  EXPECT_EQ(cost.payload_doubles, 90u);    // one scalar per p2p message
}

TEST(Protocol, MessageCountsCentralAgentScheme) {
  sim::ProtocolConfig config;
  config.scheme = sim::AggregationScheme::kCentralAgent;
  const sim::RoundMessageCost cost = sim::round_message_cost(10, config);
  EXPECT_EQ(cost.point_to_point, 18u);     // 2(N-1)
  EXPECT_EQ(cost.broadcast_medium, 10u);   // N-1 uploads + 1 reply
  EXPECT_EQ(cost.payload_doubles, 18u);    // 9 up + 9 down, one scalar each
}

TEST(Protocol, SingleNodeExchangesNothing) {
  // A single node never transmits: the old accounting charged one
  // broadcast-medium transmission (and the central scheme one reply) to
  // a network of one. All counts must be zero, under every scheme and
  // payload mode.
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    for (const bool full_allocation : {false, true}) {
      sim::ProtocolConfig config;
      config.scheme = scheme;
      config.needs_full_allocation = full_allocation;
      const sim::RoundMessageCost cost = sim::round_message_cost(1, config);
      EXPECT_EQ(cost.point_to_point, 0u);
      EXPECT_EQ(cost.broadcast_medium, 0u);
      EXPECT_EQ(cost.payload_doubles, 0u);
    }
  }
}

TEST(Protocol, SingleNodeRunConvergesWithZeroMessages) {
  // n = 1 end to end (the multicopy payload mode exercised for good
  // measure): the whole file sits on the only node, the protocol
  // detects termination in its first round, and — after the accounting
  // fix — reports zero traffic of any kind.
  const core::SingleFileModel model(
      core::SingleFileProblem{net::CostMatrix(1), {1.0}, {1.5}});
  sim::ProtocolConfig config;
  config.needs_full_allocation = true;
  config.algorithm = paper_options();
  const sim::ProtocolResult result = sim::run_protocol(model, {1.0}, config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.x, (std::vector<double>{1.0}));
  EXPECT_EQ(result.point_to_point_messages, 0u);
  EXPECT_EQ(result.broadcast_medium_messages, 0u);
  EXPECT_EQ(result.payload_doubles, 0u);
}

TEST(Protocol, BroadcastAndCentralCoincideOnABroadcastMedium) {
  // Section 5.1: "in a broadcast environment ... these two schemes
  // require approximately the same number of messages".
  sim::ProtocolConfig broadcast;
  broadcast.scheme = sim::AggregationScheme::kBroadcast;
  sim::ProtocolConfig central;
  central.scheme = sim::AggregationScheme::kCentralAgent;
  for (const std::size_t n : {4u, 8u, 16u}) {
    EXPECT_EQ(sim::round_message_cost(n, broadcast).broadcast_medium,
              sim::round_message_cost(n, central).broadcast_medium);
  }
}

TEST(Protocol, MulticopyNeedsMorePayload) {
  // Section 7.3: with multiple copies each node must also learn the full
  // allocation, growing the payload.
  sim::ProtocolConfig single;
  sim::ProtocolConfig multi;
  multi.needs_full_allocation = true;
  for (const std::size_t n : {4u, 8u, 16u}) {
    EXPECT_GT(sim::round_message_cost(n, multi).payload_doubles,
              sim::round_message_cost(n, single).payload_doubles);
  }
  // Central-agent reply carries the whole allocation vector.
  sim::ProtocolConfig central_multi;
  central_multi.scheme = sim::AggregationScheme::kCentralAgent;
  central_multi.needs_full_allocation = true;
  const sim::RoundMessageCost cost =
      sim::round_message_cost(4, central_multi);
  EXPECT_EQ(cost.payload_doubles, 3u * 2u + 3u * (1u + 4u));
}

TEST(Protocol, MessageTotalsScaleWithRounds) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config;
  config.algorithm = paper_options();
  const sim::ProtocolResult result =
      sim::run_protocol(model, {0.8, 0.1, 0.1, 0.0}, config);
  const sim::RoundMessageCost per_round = sim::round_message_cost(4, config);
  EXPECT_EQ(result.point_to_point_messages,
            result.rounds * per_round.point_to_point);
  EXPECT_EQ(result.broadcast_medium_messages,
            result.rounds * per_round.broadcast_medium);
  EXPECT_EQ(result.payload_doubles, result.rounds * per_round.payload_doubles);
}

TEST(Protocol, RunsTheMulticopyRingObjective) {
  const core::RingModel model{
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0})};
  sim::ProtocolConfig config;
  config.needs_full_allocation = true;
  config.algorithm.alpha = 0.05;
  config.algorithm.epsilon = 5e-3;
  config.algorithm.max_iterations = 2000;
  const sim::ProtocolResult result =
      sim::run_protocol(model, {0.9, 0.5, 0.35, 0.25}, config);
  EXPECT_LT(result.cost, model.cost({0.9, 0.5, 0.35, 0.25}));
  EXPECT_NEAR(fap::util::sum(result.x), 2.0, 1e-9);
}

TEST(Protocol, CostTraceRecordsEveryRound) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::ProtocolConfig config;
  config.algorithm = paper_options();
  config.record_cost_trace = true;
  const sim::ProtocolResult result =
      sim::run_protocol(model, {0.8, 0.1, 0.1, 0.0}, config);
  // One cost entry per non-terminal round.
  EXPECT_EQ(result.cost_trace.size(), result.rounds - 1);
  for (std::size_t t = 1; t < result.cost_trace.size(); ++t) {
    EXPECT_LE(result.cost_trace[t], result.cost_trace[t - 1] + 1e-12);
  }
}

}  // namespace
