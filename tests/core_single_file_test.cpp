// Unit and property tests for the Eq. 1-2 cost model.
#include "core/single_file.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "core/cost_model.hpp"
#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "test_helpers.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
using fap::util::PreconditionError;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

TEST(SingleFileModel, AccessCostsOfPaperRing) {
  const core::SingleFileModel model = paper_model();
  // Symmetric unit-cost 4-ring with uniform λ: C_i = (0+1+2+1)/4 = 1 ∀i.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(model.access_cost(i), 1.0);
  }
  EXPECT_DOUBLE_EQ(model.total_rate(), 1.0);
}

TEST(SingleFileModel, CostAtUniformAllocationHandComputed) {
  const core::SingleFileModel model = paper_model();
  // x_i = 1/4: C = Σ x_i (C_i + k/(μ - λ x_i)) = 1 + 1/(1.5 - 0.25) = 1.8.
  EXPECT_NEAR(model.cost({0.25, 0.25, 0.25, 0.25}), 1.8, 1e-12);
}

TEST(SingleFileModel, CostAtIntegralAllocationHandComputed) {
  const core::SingleFileModel model = paper_model();
  // Whole file at one node: C = 1 + 1/(1.5 - 1) = 3.
  EXPECT_NEAR(model.cost({0.0, 0.0, 0.0, 1.0}), 3.0, 1e-12);
}

TEST(SingleFileModel, FragmentedBeatsIntegralOnTheSymmetricRing) {
  const core::SingleFileModel model = paper_model();
  EXPECT_LT(model.cost({0.25, 0.25, 0.25, 0.25}),
            model.cost({1.0, 0.0, 0.0, 0.0}));
}

TEST(SingleFileModel, GradientHandComputedAtUniform) {
  const core::SingleFileModel model = paper_model();
  // ∂C/∂x_i = C_i + kμ/(μ - λx_i)² = 1 + 1.5/1.5625 = 1.96.
  const std::vector<double> grad = model.gradient({0.25, 0.25, 0.25, 0.25});
  for (const double g : grad) {
    EXPECT_NEAR(g, 1.0 + 1.5 / (1.25 * 1.25), 1e-12);
  }
}

TEST(SingleFileModel, ZeroFragmentContributesNoCost) {
  const core::SingleFileModel model = paper_model();
  EXPECT_NEAR(model.cost({0.5, 0.5, 0.0, 0.0}),
              2.0 * 0.5 * (1.0 + 1.0 / (1.5 - 0.5)), 1e-12);
}

TEST(SingleFileModel, UtilityIsNegatedCost) {
  const core::SingleFileModel model = paper_model();
  const std::vector<double> x{0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(model.utility(x), -model.cost(x));
  const std::vector<double> du = model.marginal_utilities(x);
  const std::vector<double> grad = model.gradient(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(du[i], -grad[i]);
  }
}

// Property sweep: closed-form derivatives must match numeric
// differentiation on random problems at random interior points.
class SingleFileDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(SingleFileDerivativeTest, GradientMatchesNumeric) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 9));
  const std::vector<double> x = fap::testing::random_feasible(model, seed + 1);
  const auto f = [&model](const std::vector<double>& v) {
    return model.cost(v);
  };
  const std::vector<double> numeric = fap::util::numeric_gradient(f, x);
  const std::vector<double> analytic = model.gradient(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-4 * (1.0 + std::fabs(numeric[i])))
        << "seed=" << seed << " i=" << i;
  }
}

TEST_P(SingleFileDerivativeTest, SecondDerivativeMatchesNumeric) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 4 + seed % 9));
  const std::vector<double> x = fap::testing::random_feasible(model, seed + 2);
  const auto f = [&model](const std::vector<double>& v) {
    return model.cost(v);
  };
  const std::vector<double> analytic = model.second_derivative(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double numeric = fap::util::numeric_second_derivative(f, x, i);
    EXPECT_NEAR(analytic[i], numeric, 1e-2 * (1.0 + std::fabs(numeric)))
        << "seed=" << seed << " i=" << i;
  }
}

TEST_P(SingleFileDerivativeTest, CostIsConvexAlongRandomFeasibleSegments) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const core::SingleFileModel model(
      fap::testing::random_single_file_problem(seed, 5));
  const std::vector<double> a = fap::testing::random_feasible(model, seed + 3);
  const std::vector<double> b = fap::testing::random_feasible(model, seed + 4);
  std::vector<double> mid(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    mid[i] = 0.5 * (a[i] + b[i]);
  }
  EXPECT_LE(model.cost(mid), 0.5 * model.cost(a) + 0.5 * model.cost(b) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, SingleFileDerivativeTest,
                         ::testing::Range(1, 13));

TEST(SingleFileModel, DerivativeBoundsHoldOverSampledAllocations) {
  const core::SingleFileModel model = paper_model();
  const core::DerivativeBounds bounds = model.derivative_bounds();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<double> x = fap::testing::random_feasible(model, seed);
    const std::vector<double> grad = model.gradient(x);
    const std::vector<double> hess = model.second_derivative(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(grad[i], bounds.grad_min - 1e-9);
      EXPECT_LE(grad[i], bounds.grad_max + 1e-9);
      EXPECT_LE(hess[i], bounds.hess_max + 1e-9);
      EXPECT_GE(hess[i], 0.0);  // convexity
    }
  }
}

TEST(SingleFileModel, DerivativeBoundsClosedForm) {
  const core::SingleFileModel model = paper_model();
  const core::DerivativeBounds bounds = model.derivative_bounds();
  // (b)-(d) from the appendix with C_max = C_min = 1, μ = 1.5, λ = k = 1.
  EXPECT_NEAR(bounds.grad_min, 1.0 + 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(bounds.grad_max, 1.0 + 1.5 / 0.25, 1e-12);
  EXPECT_NEAR(bounds.hess_max, 2.0 * 1.5 / 0.125, 1e-12);
}

TEST(SingleFileModel, Theorem2BoundIsPositiveAndScalesWithEpsilonSquared) {
  const core::SingleFileModel model = paper_model();
  const double bound1 = model.theorem2_alpha_bound(1e-3);
  const double bound2 = model.theorem2_alpha_bound(2e-3);
  EXPECT_GT(bound1, 0.0);
  EXPECT_NEAR(bound2 / bound1, 4.0, 1e-9);
  // The paper notes this bound is very conservative: far below the
  // empirically fast α ≈ 0.3-0.7.
  EXPECT_LT(bound1, 1e-6);
}

TEST(SingleFileModel, QueryUpdateSplitShiftsCommCosts) {
  // Node 0 issues only updates, node 2 only queries; updates 5x heavier.
  const fap::net::Topology ring = fap::net::make_ring(4, 1.0);
  core::QueryUpdateWorkload workload;
  workload.query_rate = {0.0, 0.1, 0.3, 0.1};
  workload.update_rate = {0.3, 0.1, 0.0, 0.1};
  workload.query_comm_weight = 1.0;
  workload.update_comm_weight = 5.0;

  core::SingleFileProblem problem =
      core::make_problem(ring, workload.combined(), /*mu=*/2.0, /*k=*/1.0);
  problem.comm_weight_rates = workload.comm_weight_rates();
  const core::SingleFileModel model(std::move(problem));

  // Heavy updates from node 0 make hosting *near node 0* cheap: C_0 must
  // be strictly below C_2 (which only light queries care about).
  EXPECT_LT(model.access_cost(0), model.access_cost(2));
}

TEST(SingleFileModel, HeterogeneousServiceRatesFavorFastNodes) {
  fap::core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {5.0, 1.5, 1.5, 1.5};  // node 0 much faster
  const core::SingleFileModel model(std::move(problem));
  const std::vector<double> grad = model.gradient({0.25, 0.25, 0.25, 0.25});
  // Marginal cost of adding file at the fast node is strictly lower.
  EXPECT_LT(grad[0], grad[1]);
}

TEST(SingleFileModel, WorkloadHelpers) {
  const core::Workload w = core::Workload::uniform(4, 2.0);
  EXPECT_DOUBLE_EQ(w.total(), 2.0);
  EXPECT_DOUBLE_EQ(w.lambda[3], 0.5);
  EXPECT_THROW(core::Workload::uniform(0, 1.0), PreconditionError);
  EXPECT_THROW(core::Workload::uniform(3, 0.0), PreconditionError);
}

TEST(SingleFileModel, RejectsInvalidConstruction) {
  // λ >= μ with a pure delay model must be rejected.
  const fap::net::Topology ring = fap::net::make_ring(4, 1.0);
  EXPECT_THROW(core::SingleFileModel(core::make_problem(
                   ring, core::Workload::uniform(4, 2.0), /*mu=*/1.5, 1.0)),
               PreconditionError);
  // ... but allowed with a linearized delay model.
  EXPECT_NO_THROW(core::SingleFileModel(core::make_problem(
      ring, core::Workload::uniform(4, 2.0), /*mu=*/1.5, 1.0,
      fap::queueing::DelayModel::mm1(0.9))));
}

TEST(SingleFileModel, CheckFeasibleValidates) {
  const core::SingleFileModel model = paper_model();
  EXPECT_NO_THROW(model.check_feasible({0.25, 0.25, 0.25, 0.25}));
  EXPECT_THROW(model.check_feasible({0.5, 0.5, 0.5, 0.5}),
               PreconditionError);  // sums to 2
  EXPECT_THROW(model.check_feasible({1.5, -0.5, 0.0, 0.0}),
               PreconditionError);  // negative entry
  EXPECT_THROW(model.check_feasible({1.0}), PreconditionError);  // dimension
  EXPECT_TRUE(core::is_feasible(model, {1.0, 0.0, 0.0, 0.0}));
  EXPECT_FALSE(core::is_feasible(model, {1.0, 0.1, 0.0, 0.0}));
}

// Cost providers are drop-in replacements for the dense matrix: the
// assembled C_i, and therefore every downstream cost/gradient, must be
// byte-identical — not merely close — to the dense-backed model.
void expect_models_bitwise_equal(const core::SingleFileModel& dense,
                                 const core::SingleFileModel& provider,
                                 std::uint64_t seed) {
  ASSERT_EQ(dense.dimension(), provider.dimension());
  for (std::size_t i = 0; i < dense.dimension(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(dense.access_cost(i)),
              std::bit_cast<std::uint64_t>(provider.access_cost(i)))
        << "C_" << i;
  }
  const std::vector<double> x = fap::testing::random_feasible(dense, seed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(dense.cost(x)),
            std::bit_cast<std::uint64_t>(provider.cost(x)));
  const std::vector<double> dg = dense.gradient(x);
  const std::vector<double> pg = provider.gradient(x);
  for (std::size_t i = 0; i < dg.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(dg[i]),
              std::bit_cast<std::uint64_t>(pg[i]))
        << "grad " << i;
  }
}

TEST(SingleFileModel, RowProviderModelMatchesDenseBitwise) {
  fap::util::Rng rng(17);
  const fap::net::Topology topology =
      fap::net::make_random_metric(12, 3, rng);
  core::Workload workload;
  workload.lambda = {0.05, 0.1, 0.02, 0.08, 0.04, 0.11,
                     0.03, 0.07, 0.09, 0.06, 0.01, 0.12};
  const core::SingleFileModel dense(
      core::make_problem(topology, workload, /*mu=*/2.0, /*k=*/1.0));
  const core::SingleFileModel rows(core::make_problem(
      std::make_shared<fap::net::RowCostProvider>(topology,
                                                  /*row_cache_capacity=*/4),
      workload, /*mu=*/2.0, /*k=*/1.0));
  expect_models_bitwise_equal(dense, rows, 41);
}

TEST(SingleFileModel, HierarchicalProviderModelMatchesDenseBitwise) {
  const fap::net::TieredNetwork tiered = fap::net::make_geo_tiers(2, 2, 2);
  const core::Workload workload =
      core::Workload::uniform(tiered.topology.node_count(), 1.0);
  const core::SingleFileModel dense(
      core::make_problem(tiered.topology, workload, /*mu=*/2.0, /*k=*/1.0));
  const core::SingleFileModel implicit(core::make_problem(
      std::make_shared<fap::net::HierarchicalCostProvider>(tiered.spec),
      workload, /*mu=*/2.0, /*k=*/1.0));
  expect_models_bitwise_equal(dense, implicit, 43);
}

TEST(SingleFileModel, ProviderMakeProblemValidatesNodeCounts) {
  const fap::net::Topology ring = fap::net::make_ring(4, 1.0);
  // 5-node workload against a 4-node provider must be rejected.
  EXPECT_THROW(
      core::make_problem(std::make_shared<fap::net::RowCostProvider>(ring),
                         core::Workload::uniform(5, 1.0), 2.0, 1.0),
      PreconditionError);
}

TEST(SingleFileModel, UniformAllocationHelper) {
  const core::SingleFileModel model = paper_model();
  const std::vector<double> x = core::uniform_allocation(model);
  for (const double xi : x) {
    EXPECT_DOUBLE_EQ(xi, 0.25);
  }
}

}  // namespace
