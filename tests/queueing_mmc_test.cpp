// M/M/c (multi-server node) tests: Erlang-C values, DelayModel behavior,
// DES validation, and integration with the allocation model.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/projected_gradient.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "queueing/delay.hpp"
#include "sim/des.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace queueing = fap::queueing;
namespace sim = fap::sim;
using queueing::DelayModel;

TEST(ErlangC, KnownValues) {
  // c = 1 reduces to the M/M/1 waiting probability ρ.
  EXPECT_NEAR(queueing::erlang_c(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(queueing::erlang_c(1, 0.9), 0.9, 1e-12);
  // c = 2, r = 1 (ρ = 0.5): C = (1/2)/( (1/2)(1+1) + 1/2 ) = 1/3.
  EXPECT_NEAR(queueing::erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // Zero load never waits.
  EXPECT_NEAR(queueing::erlang_c(4, 0.0), 0.0, 1e-12);
}

TEST(ErlangC, RejectsOverload) {
  EXPECT_THROW(queueing::erlang_c(2, 2.0), fap::util::PreconditionError);
  EXPECT_THROW(queueing::erlang_c(0, 0.5), fap::util::PreconditionError);
}

TEST(MMc, SingleServerMatchesMM1) {
  const DelayModel mmc = DelayModel::mmc(1);
  const DelayModel mm1 = DelayModel::mm1();
  for (const double a : {0.1, 0.6, 1.2}) {
    EXPECT_NEAR(mmc.sojourn(a, 1.5), mm1.sojourn(a, 1.5), 1e-9);
    EXPECT_NEAR(mmc.d_sojourn(a, 1.5), mm1.d_sojourn(a, 1.5), 1e-4);
    EXPECT_NEAR(mmc.d2_sojourn(a, 1.5), mm1.d2_sojourn(a, 1.5), 1e-2);
  }
}

TEST(MMc, SojournHandComputed) {
  // c = 2, μ = 1, a = 1 (r = 1): T = 1/μ + C/(cμ - a) = 1 + (1/3)/1.
  const DelayModel mmc = DelayModel::mmc(2);
  EXPECT_NEAR(mmc.sojourn(1.0, 1.0), 1.0 + 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mmc.capacity(1.0), 2.0);
}

TEST(MMc, PoolingBeatsSplitServers) {
  // Classic queueing fact: one pooled c-server node beats c separate
  // M/M/1 queues each taking a/c of the traffic.
  const DelayModel pooled = DelayModel::mmc(4);
  const DelayModel single = DelayModel::mm1();
  const double mu = 1.0;
  for (const double a : {1.0, 2.0, 3.5}) {
    EXPECT_LT(pooled.sojourn(a, mu), single.sojourn(a / 4.0, mu));
  }
}

TEST(MMc, IncreasingAndConvexWithinCapacity) {
  const DelayModel mmc = DelayModel::mmc(3);
  double previous = mmc.sojourn(0.0, 1.0);
  for (double a = 0.1; a < 2.9; a += 0.1) {
    const double value = mmc.sojourn(a, 1.0);
    EXPECT_GT(value, previous - 1e-12);
    EXPECT_GT(mmc.d_sojourn(a, 1.0), 0.0);
    EXPECT_GT(mmc.d2_sojourn(a, 1.0), -1e-6);
    previous = value;
  }
}

TEST(MMc, StabilityUsesTotalCapacity) {
  const DelayModel mmc = DelayModel::mmc(3);
  EXPECT_NO_THROW(mmc.sojourn(2.9, 1.0));   // below 3μ
  EXPECT_THROW(mmc.sojourn(3.0, 1.0), fap::util::PreconditionError);
  // Linearized variant is finite past capacity.
  const DelayModel extended = DelayModel::mmc(3, 0.9);
  EXPECT_TRUE(std::isfinite(extended.sojourn(5.0, 1.0)));
}

TEST(MMc, DesMatchesErlangFormula) {
  // One node, 3 servers of rate 0.6 each, λ = 1.4 (ρ ≈ 0.78).
  sim::DesConfig config;
  config.lambda = {1.4};
  config.mu = {0.6};
  config.routing = {{1.0}};
  config.comm_cost = {{0.0}};
  config.servers_per_node = {3};
  config.measured_accesses = 200000;
  config.warmup_time = 500.0;
  config.seed = 2024;
  const sim::DesResult result = sim::run_des(config);
  const DelayModel mmc = DelayModel::mmc(3);
  const double theory = mmc.sojourn(1.4, 0.6);
  EXPECT_NEAR(result.sojourn.mean(), theory, 0.05 * theory);
  // Per-server utilization = a / (cμ).
  EXPECT_NEAR(result.node[0].utilization, 1.4 / 1.8, 0.02);
}

TEST(MMc, AllocationModelShiftsLoadTowardThePooledNode) {
  // Node 0 has four slow servers (capacity 2.0), others one fast server
  // (capacity 1.5): pooling economies draw extra load to node 0.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.delay = DelayModel::mmc(4);
  problem.mu = {0.5, 1.5, 1.5, 1.5};  // per-server rates
  // With DelayModel::mmc(4) EVERY node has 4 servers; emulate
  // heterogeneous pooling by rate instead: node 0's per-server rate is
  // lower but its pooled capacity 4·0.5 = 2.0 exceeds the others' 6.0...
  // (all nodes have 4 servers here; the pooled-vs-split contrast is in
  // MMc.PoolingBeatsSplitServers.)
  const core::SingleFileModel model(std::move(problem));
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result =
      allocator.run(core::uniform_allocation(model));
  ASSERT_TRUE(result.converged);
  const auto reference = fap::baselines::projected_gradient_solve(
      model, core::uniform_allocation(model));
  EXPECT_NEAR(result.cost, reference.cost, 1e-4 * (1.0 + reference.cost));
  // Node 0 (capacity 2.0 < 6.0) holds less than the fast nodes.
  EXPECT_LT(result.x[0], result.x[1]);
}

TEST(MMc, EndToEndDesValidationOfTheAllocationModel) {
  // Optimize under M/M/c and verify the running multi-server system
  // measures what Eq. 1 (with the Erlang sojourn) predicts.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.delay = DelayModel::mmc(2);
  problem.mu = {0.75, 0.75, 0.75, 0.75};  // per-server; capacity 1.5
  const core::SingleFileModel model(std::move(problem));
  const std::vector<double> x{0.4, 0.3, 0.2, 0.1};
  sim::DesConfig config = sim::des_config_for(model, x);
  config.servers_per_node.assign(4, 2);
  config.measured_accesses = 150000;
  config.seed = 808;
  const sim::DesResult result = sim::run_des(config);
  const double analytic = model.cost(x);
  EXPECT_NEAR(result.measured_cost, analytic, 0.05 * analytic);
}

}  // namespace
