// Tests for measurement-driven parameter estimation (Section 8 adaptive
// scheme): estimates recover the true parameters from a DES access log,
// and the closed estimation -> optimization loop lands near the true
// optimum.
#include "sim/estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "util/contracts.hpp"

namespace {

namespace core = fap::core;
namespace sim = fap::sim;

sim::DesResult run_logged(const core::SingleFileModel& model,
                          const std::vector<double>& x, std::uint64_t seed,
                          std::size_t accesses = 120000) {
  sim::DesConfig config = sim::des_config_for(model, x);
  config.record_log = true;
  config.measured_accesses = accesses;
  config.seed = seed;
  return sim::run_des(config);
}

TEST(Estimation, RecoversGenerationRates) {
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.lambda = {0.4, 0.3, 0.2, 0.1};
  const core::SingleFileModel model(std::move(problem));
  const sim::DesResult des =
      run_logged(model, {0.25, 0.25, 0.25, 0.25}, 5);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  EXPECT_EQ(estimates.samples, des.log.size());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(estimates.lambda[i], model.problem().lambda[i],
                0.05 * model.problem().lambda[i] + 0.005)
        << "node " << i;
  }
}

TEST(Estimation, RecoversServiceRates) {
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {1.5, 2.5, 1.5, 3.0};
  const core::SingleFileModel model(std::move(problem));
  const sim::DesResult des =
      run_logged(model, {0.25, 0.25, 0.25, 0.25}, 7);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(estimates.mu_observed[i]);
    EXPECT_NEAR(estimates.mu[i], model.problem().mu[i],
                0.05 * model.problem().mu[i])
        << "node " << i;
  }
}

TEST(Estimation, ServiceMixTracksTheAllocation) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> x{0.5, 0.3, 0.2, 0.0};
  const sim::DesResult des = run_logged(model, x, 9);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(estimates.service_mix[i], x[i], 0.02) << "node " << i;
  }
  // Node 3 served nothing: μ̂ must be flagged unobserved.
  EXPECT_FALSE(estimates.mu_observed[3]);
  EXPECT_TRUE(estimates.mu_observed[0]);
}

TEST(Estimation, MeanCommCostMatchesDesStatistics) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const sim::DesResult des = run_logged(model, {0.25, 0.25, 0.25, 0.25}, 11);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  EXPECT_NEAR(estimates.mean_comm_cost, des.comm_cost.mean(), 1e-9);
}

TEST(Estimation, ProblemFromEstimatesUsesFallbackMu) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const sim::DesResult des = run_logged(model, {0.5, 0.5, 0.0, 0.0}, 13);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  const core::SingleFileProblem rebuilt = sim::problem_from_estimates(
      estimates, model.problem().comm, /*k=*/1.0, /*fallback_mu=*/1.5);
  EXPECT_NEAR(rebuilt.mu[0], 1.5, 0.1);   // observed, close to truth
  EXPECT_DOUBLE_EQ(rebuilt.mu[2], 1.5);   // unobserved: exact fallback
  EXPECT_NO_THROW(core::SingleFileModel{rebuilt});
}

TEST(Estimation, ClosedLoopReachesNearTrueOptimum) {
  // The operator does not know λ or μ. Observe the system under a uniform
  // allocation, estimate, optimize on the estimated model, and score the
  // result on the TRUE model.
  core::SingleFileProblem truth = core::make_paper_ring_problem();
  truth.lambda = {0.45, 0.25, 0.2, 0.1};
  truth.mu = {2.0, 1.5, 1.5, 1.8};
  const core::SingleFileModel true_model(truth);

  const sim::DesResult des =
      run_logged(true_model, {0.25, 0.25, 0.25, 0.25}, 17);
  const sim::EstimatedParameters estimates =
      sim::estimate_parameters(des.log, 4);
  const core::SingleFileModel estimated_model(sim::problem_from_estimates(
      estimates, truth.comm, truth.k, /*fallback_mu=*/1.5));

  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(estimated_model, options);
  const core::AllocationResult adapted =
      allocator.run(core::uniform_allocation(estimated_model));
  ASSERT_TRUE(adapted.converged);

  const core::ResourceDirectedAllocator oracle(true_model, options);
  const core::AllocationResult optimal =
      oracle.run(core::uniform_allocation(true_model));

  const double adapted_true_cost = true_model.cost(adapted.x);
  EXPECT_LT(adapted_true_cost,
            true_model.cost(core::uniform_allocation(true_model)));
  EXPECT_NEAR(adapted_true_cost, optimal.cost, 0.02 * optimal.cost);
}

TEST(Estimation, RejectsMalformedInput) {
  EXPECT_THROW(sim::estimate_parameters({}, 4),
               fap::util::PreconditionError);
  std::vector<sim::AccessObservation> bad{{5, 0, 0.0, 0.1, 0.2, 1.0}};
  EXPECT_THROW(sim::estimate_parameters(bad, 4),
               fap::util::PreconditionError);
  std::vector<sim::AccessObservation> out_of_order{{0, 0, 1.0, 0.5, 2.0, 1.0}};
  EXPECT_THROW(sim::estimate_parameters(out_of_order, 4),
               fap::util::PreconditionError);
}

}  // namespace
