// Asynchrony tests: staleness semantics, feasibility drift of the
// averaging update, anti-entropy correction, and the structural
// conservation of gossip.
#include "sim/async_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace {

namespace core = fap::core;
namespace net = fap::net;
namespace sim = fap::sim;

core::SingleFileModel paper_model() {
  return core::SingleFileModel(core::make_paper_ring_problem());
}

std::vector<std::vector<std::size_t>> uniform_delay(std::size_t n,
                                                    std::size_t d) {
  std::vector<std::vector<std::size_t>> delay(
      n, std::vector<std::size_t>(n, d));
  for (std::size_t i = 0; i < n; ++i) {
    delay[i][i] = 0;
  }
  return delay;
}

std::vector<std::vector<std::size_t>> random_delay(std::size_t n,
                                                   std::size_t max_d,
                                                   std::uint64_t seed) {
  fap::util::Rng rng(seed);
  auto delay = uniform_delay(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        delay[i][j] = rng.uniform_index(max_d + 1);
      }
    }
  }
  return delay;
}

TEST(AsyncAveraging, NoDelayMatchesSynchronousConvergence) {
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.alpha = 0.3;
  config.rounds = 200;
  const sim::AsyncResult result =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);
  EXPECT_NEAR(result.max_feasibility_drift, 0.0, 1e-9);
  EXPECT_NEAR(result.cost, 1.8, 1e-4);
}

TEST(AsyncAveraging, EvenUniformDelayDriftsBecauseSelfIsFresh) {
  // Each node's own marginal utility is current while everyone else's is
  // three rounds old, so the nodes average *different* snapshots and
  // Σ Δx ≠ 0 — uniform staleness does not save feasibility. With
  // anti-entropy the run still lands at the optimum.
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.alpha = 0.2;
  config.rounds = 600;
  config.delay = uniform_delay(4, 3);
  const sim::AsyncResult raw =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);
  EXPECT_GT(raw.max_feasibility_drift, 1e-3);

  config.correction_interval = 10;
  const sim::AsyncResult corrected =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);
  EXPECT_NEAR(corrected.cost, 1.8, 5e-3);
}

TEST(AsyncAveraging, HeterogeneousDelaysCauseFeasibilityDrift) {
  // The structural failure: nodes averaging different snapshots makes
  // Σ Δx ≠ 0. With strongly asymmetric delays, the drift is visible.
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.alpha = 0.3;
  config.rounds = 120;
  config.delay = random_delay(4, 6, 99);
  const sim::AsyncResult result =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);
  EXPECT_GT(result.max_feasibility_drift, 1e-4);
}

TEST(AsyncAveraging, AntiEntropyBoundsTheDrift) {
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.alpha = 0.3;
  config.rounds = 400;
  config.delay = random_delay(4, 6, 99);

  const sim::AsyncResult uncorrected =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);
  config.correction_interval = 10;
  const sim::AsyncResult corrected =
      sim::run_async_averaging(model, {0.8, 0.1, 0.1, 0.0}, config);

  EXPECT_LT(corrected.final_feasibility_drift,
            uncorrected.max_feasibility_drift + 1e-12);
  // With periodic renormalization the system still lands near the
  // optimum.
  EXPECT_NEAR(corrected.cost, 1.8, 0.02);
}

TEST(AsyncGossip, ConservesMassExactlyUnderAnyStaleness) {
  const core::SingleFileModel model = paper_model();
  const net::Topology ring = net::make_ring(4, 1.0);
  sim::AsyncConfig config;
  config.alpha = 0.2;
  config.rounds = 1500;
  config.delay = random_delay(4, 8, 7);
  const sim::AsyncResult result =
      sim::run_async_gossip(model, ring, {0.8, 0.1, 0.1, 0.0}, config);
  // Pairwise transfers cannot create or destroy file mass.
  EXPECT_NEAR(result.max_feasibility_drift, 0.0, 1e-9);
  EXPECT_NEAR(result.cost, 1.8, 5e-3);
}

TEST(AsyncGossip, StalenessSlowsButDoesNotBreakConvergence) {
  // Delayed-feedback stability: the gain must shrink with the delay
  // (α·delay small) or the dynamics limit-cycle around the optimum —
  // conserving mass throughout, but never settling. With a gain matched
  // to the staleness, gossip converges.
  const core::SingleFileModel model = paper_model();
  const net::Topology ring = net::make_ring(4, 1.0);
  auto cost_after = [&](std::size_t delay_rounds, std::size_t rounds,
                        double alpha) {
    sim::AsyncConfig config;
    config.alpha = alpha;
    config.rounds = rounds;
    config.delay = uniform_delay(4, delay_rounds);
    return sim::run_async_gossip(model, ring, {0.8, 0.1, 0.1, 0.0}, config)
        .cost;
  };
  // Same budget and gain: fresh info does at least as well as stale.
  EXPECT_LE(cost_after(0, 120, 0.2), cost_after(8, 120, 0.2) + 1e-9);
  // A delay-8 system with the full gain oscillates and stays away from
  // the optimum...
  EXPECT_GT(cost_after(8, 3000, 0.2), 1.81);
  // ...while a delay-matched gain converges.
  EXPECT_NEAR(cost_after(8, 3000, 0.05), 1.8, 5e-3);
}

TEST(Async, RaggedDelayRowsFireTheRowSizeContract) {
  // The delay matrix must be square: a ragged row (right outer size,
  // wrong inner size) must fail the per-row FAP_EXPECTS with its
  // message, not crash or silently index out of bounds.
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.delay = uniform_delay(4, 1);
  config.delay[2].pop_back();  // ragged: row 2 has 3 entries
  try {
    sim::run_async_averaging(model, {0.25, 0.25, 0.25, 0.25}, config);
    FAIL() << "ragged delay row accepted";
  } catch (const fap::util::PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("delay row size mismatch"),
              std::string::npos)
        << error.what();
  }
  const net::Topology ring = net::make_ring(4, 1.0);
  EXPECT_THROW(
      sim::run_async_gossip(model, ring, {0.25, 0.25, 0.25, 0.25}, config),
      fap::util::PreconditionError);
}

TEST(Async, NonzeroDiagonalFiresTheSelfKnowledgeContract) {
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.delay = uniform_delay(4, 2);
  config.delay[1][1] = 1;  // a node cannot be stale about itself
  try {
    sim::run_async_averaging(model, {0.25, 0.25, 0.25, 0.25}, config);
    FAIL() << "nonzero delay diagonal accepted";
  } catch (const fap::util::PreconditionError& error) {
    EXPECT_NE(std::string(error.what())
                  .find("a node always knows its own current state"),
              std::string::npos)
        << error.what();
  }
}

TEST(Async, WrongOuterDelaySizeFiresTheMatrixContract) {
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.delay = uniform_delay(3, 1);  // 3x3 matrix for a 4-node model
  try {
    sim::run_async_averaging(model, {0.25, 0.25, 0.25, 0.25}, config);
    FAIL() << "wrong-sized delay matrix accepted";
  } catch (const fap::util::PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("delay matrix size mismatch"),
              std::string::npos)
        << error.what();
  }
}

TEST(Async, RejectsMalformedConfigs) {
  const core::SingleFileModel model = paper_model();
  sim::AsyncConfig config;
  config.delay = uniform_delay(3, 1);  // wrong size
  EXPECT_THROW(
      sim::run_async_averaging(model, {0.25, 0.25, 0.25, 0.25}, config),
      fap::util::PreconditionError);
  config.delay = uniform_delay(4, 1);
  config.delay[2][2] = 3;  // a node cannot be stale about itself
  EXPECT_THROW(
      sim::run_async_averaging(model, {0.25, 0.25, 0.25, 0.25}, config),
      fap::util::PreconditionError);
}

}  // namespace
