# Empty dependencies file for fap_queueing.
# This may be replaced when dependencies are built.
