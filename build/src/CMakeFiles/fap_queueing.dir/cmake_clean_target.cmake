file(REMOVE_RECURSE
  "libfap_queueing.a"
)
