file(REMOVE_RECURSE
  "CMakeFiles/fap_queueing.dir/queueing/delay.cpp.o"
  "CMakeFiles/fap_queueing.dir/queueing/delay.cpp.o.d"
  "libfap_queueing.a"
  "libfap_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
