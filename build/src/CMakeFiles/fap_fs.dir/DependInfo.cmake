
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/directory.cpp" "src/CMakeFiles/fap_fs.dir/fs/directory.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/directory.cpp.o.d"
  "/root/repo/src/fs/fragment_map.cpp" "src/CMakeFiles/fap_fs.dir/fs/fragment_map.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/fragment_map.cpp.o.d"
  "/root/repo/src/fs/lock_manager.cpp" "src/CMakeFiles/fap_fs.dir/fs/lock_manager.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/lock_manager.cpp.o.d"
  "/root/repo/src/fs/migration.cpp" "src/CMakeFiles/fap_fs.dir/fs/migration.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/migration.cpp.o.d"
  "/root/repo/src/fs/popularity.cpp" "src/CMakeFiles/fap_fs.dir/fs/popularity.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/popularity.cpp.o.d"
  "/root/repo/src/fs/weighted_assignment.cpp" "src/CMakeFiles/fap_fs.dir/fs/weighted_assignment.cpp.o" "gcc" "src/CMakeFiles/fap_fs.dir/fs/weighted_assignment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
