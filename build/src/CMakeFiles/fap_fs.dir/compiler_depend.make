# Empty compiler generated dependencies file for fap_fs.
# This may be replaced when dependencies are built.
