file(REMOVE_RECURSE
  "CMakeFiles/fap_fs.dir/fs/directory.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/directory.cpp.o.d"
  "CMakeFiles/fap_fs.dir/fs/fragment_map.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/fragment_map.cpp.o.d"
  "CMakeFiles/fap_fs.dir/fs/lock_manager.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/lock_manager.cpp.o.d"
  "CMakeFiles/fap_fs.dir/fs/migration.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/migration.cpp.o.d"
  "CMakeFiles/fap_fs.dir/fs/popularity.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/popularity.cpp.o.d"
  "CMakeFiles/fap_fs.dir/fs/weighted_assignment.cpp.o"
  "CMakeFiles/fap_fs.dir/fs/weighted_assignment.cpp.o.d"
  "libfap_fs.a"
  "libfap_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
