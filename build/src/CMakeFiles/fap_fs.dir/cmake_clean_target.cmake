file(REMOVE_RECURSE
  "libfap_fs.a"
)
