file(REMOVE_RECURSE
  "CMakeFiles/fap_sim.dir/sim/async_protocol.cpp.o"
  "CMakeFiles/fap_sim.dir/sim/async_protocol.cpp.o.d"
  "CMakeFiles/fap_sim.dir/sim/des.cpp.o"
  "CMakeFiles/fap_sim.dir/sim/des.cpp.o.d"
  "CMakeFiles/fap_sim.dir/sim/des_system.cpp.o"
  "CMakeFiles/fap_sim.dir/sim/des_system.cpp.o.d"
  "CMakeFiles/fap_sim.dir/sim/estimation.cpp.o"
  "CMakeFiles/fap_sim.dir/sim/estimation.cpp.o.d"
  "CMakeFiles/fap_sim.dir/sim/protocol_sim.cpp.o"
  "CMakeFiles/fap_sim.dir/sim/protocol_sim.cpp.o.d"
  "libfap_sim.a"
  "libfap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
