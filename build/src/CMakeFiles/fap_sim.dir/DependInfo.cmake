
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_protocol.cpp" "src/CMakeFiles/fap_sim.dir/sim/async_protocol.cpp.o" "gcc" "src/CMakeFiles/fap_sim.dir/sim/async_protocol.cpp.o.d"
  "/root/repo/src/sim/des.cpp" "src/CMakeFiles/fap_sim.dir/sim/des.cpp.o" "gcc" "src/CMakeFiles/fap_sim.dir/sim/des.cpp.o.d"
  "/root/repo/src/sim/des_system.cpp" "src/CMakeFiles/fap_sim.dir/sim/des_system.cpp.o" "gcc" "src/CMakeFiles/fap_sim.dir/sim/des_system.cpp.o.d"
  "/root/repo/src/sim/estimation.cpp" "src/CMakeFiles/fap_sim.dir/sim/estimation.cpp.o" "gcc" "src/CMakeFiles/fap_sim.dir/sim/estimation.cpp.o.d"
  "/root/repo/src/sim/protocol_sim.cpp" "src/CMakeFiles/fap_sim.dir/sim/protocol_sim.cpp.o" "gcc" "src/CMakeFiles/fap_sim.dir/sim/protocol_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
