# Empty compiler generated dependencies file for fap_sim.
# This may be replaced when dependencies are built.
