file(REMOVE_RECURSE
  "libfap_sim.a"
)
