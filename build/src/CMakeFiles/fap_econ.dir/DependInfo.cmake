
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/price_directed.cpp" "src/CMakeFiles/fap_econ.dir/econ/price_directed.cpp.o" "gcc" "src/CMakeFiles/fap_econ.dir/econ/price_directed.cpp.o.d"
  "/root/repo/src/econ/resource_directed.cpp" "src/CMakeFiles/fap_econ.dir/econ/resource_directed.cpp.o" "gcc" "src/CMakeFiles/fap_econ.dir/econ/resource_directed.cpp.o.d"
  "/root/repo/src/econ/utility.cpp" "src/CMakeFiles/fap_econ.dir/econ/utility.cpp.o" "gcc" "src/CMakeFiles/fap_econ.dir/econ/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
