# Empty compiler generated dependencies file for fap_econ.
# This may be replaced when dependencies are built.
