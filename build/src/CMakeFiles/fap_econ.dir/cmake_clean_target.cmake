file(REMOVE_RECURSE
  "libfap_econ.a"
)
