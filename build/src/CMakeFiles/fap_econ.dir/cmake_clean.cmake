file(REMOVE_RECURSE
  "CMakeFiles/fap_econ.dir/econ/price_directed.cpp.o"
  "CMakeFiles/fap_econ.dir/econ/price_directed.cpp.o.d"
  "CMakeFiles/fap_econ.dir/econ/resource_directed.cpp.o"
  "CMakeFiles/fap_econ.dir/econ/resource_directed.cpp.o.d"
  "CMakeFiles/fap_econ.dir/econ/utility.cpp.o"
  "CMakeFiles/fap_econ.dir/econ/utility.cpp.o.d"
  "libfap_econ.a"
  "libfap_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
