file(REMOVE_RECURSE
  "CMakeFiles/fap_net.dir/net/generators.cpp.o"
  "CMakeFiles/fap_net.dir/net/generators.cpp.o.d"
  "CMakeFiles/fap_net.dir/net/shortest_paths.cpp.o"
  "CMakeFiles/fap_net.dir/net/shortest_paths.cpp.o.d"
  "CMakeFiles/fap_net.dir/net/topology.cpp.o"
  "CMakeFiles/fap_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/fap_net.dir/net/virtual_ring.cpp.o"
  "CMakeFiles/fap_net.dir/net/virtual_ring.cpp.o.d"
  "libfap_net.a"
  "libfap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
