file(REMOVE_RECURSE
  "libfap_net.a"
)
