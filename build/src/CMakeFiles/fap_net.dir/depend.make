# Empty dependencies file for fap_net.
# This may be replaced when dependencies are built.
