# Empty dependencies file for fap_util.
# This may be replaced when dependencies are built.
