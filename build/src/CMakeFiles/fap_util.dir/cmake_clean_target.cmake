file(REMOVE_RECURSE
  "libfap_util.a"
)
