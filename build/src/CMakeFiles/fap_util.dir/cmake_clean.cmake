file(REMOVE_RECURSE
  "CMakeFiles/fap_util.dir/util/contracts.cpp.o"
  "CMakeFiles/fap_util.dir/util/contracts.cpp.o.d"
  "CMakeFiles/fap_util.dir/util/json.cpp.o"
  "CMakeFiles/fap_util.dir/util/json.cpp.o.d"
  "CMakeFiles/fap_util.dir/util/numeric.cpp.o"
  "CMakeFiles/fap_util.dir/util/numeric.cpp.o.d"
  "CMakeFiles/fap_util.dir/util/rng.cpp.o"
  "CMakeFiles/fap_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/fap_util.dir/util/stats.cpp.o"
  "CMakeFiles/fap_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/fap_util.dir/util/table.cpp.o"
  "CMakeFiles/fap_util.dir/util/table.cpp.o.d"
  "libfap_util.a"
  "libfap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
