
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/CMakeFiles/fap_core.dir/core/allocator.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/allocator.cpp.o.d"
  "/root/repo/src/core/copy_count.cpp" "src/CMakeFiles/fap_core.dir/core/copy_count.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/copy_count.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/fap_core.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/joint_routing.cpp" "src/CMakeFiles/fap_core.dir/core/joint_routing.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/joint_routing.cpp.o.d"
  "/root/repo/src/core/multi_file.cpp" "src/CMakeFiles/fap_core.dir/core/multi_file.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/multi_file.cpp.o.d"
  "/root/repo/src/core/multicopy_allocator.cpp" "src/CMakeFiles/fap_core.dir/core/multicopy_allocator.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/multicopy_allocator.cpp.o.d"
  "/root/repo/src/core/neighbor_allocator.cpp" "src/CMakeFiles/fap_core.dir/core/neighbor_allocator.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/neighbor_allocator.cpp.o.d"
  "/root/repo/src/core/newton_allocator.cpp" "src/CMakeFiles/fap_core.dir/core/newton_allocator.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/newton_allocator.cpp.o.d"
  "/root/repo/src/core/ring_model.cpp" "src/CMakeFiles/fap_core.dir/core/ring_model.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/ring_model.cpp.o.d"
  "/root/repo/src/core/single_file.cpp" "src/CMakeFiles/fap_core.dir/core/single_file.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/single_file.cpp.o.d"
  "/root/repo/src/core/trace_export.cpp" "src/CMakeFiles/fap_core.dir/core/trace_export.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/trace_export.cpp.o.d"
  "/root/repo/src/core/volume_model.cpp" "src/CMakeFiles/fap_core.dir/core/volume_model.cpp.o" "gcc" "src/CMakeFiles/fap_core.dir/core/volume_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
