file(REMOVE_RECURSE
  "CMakeFiles/fap_core.dir/core/allocator.cpp.o"
  "CMakeFiles/fap_core.dir/core/allocator.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/copy_count.cpp.o"
  "CMakeFiles/fap_core.dir/core/copy_count.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/fap_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/joint_routing.cpp.o"
  "CMakeFiles/fap_core.dir/core/joint_routing.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/multi_file.cpp.o"
  "CMakeFiles/fap_core.dir/core/multi_file.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/multicopy_allocator.cpp.o"
  "CMakeFiles/fap_core.dir/core/multicopy_allocator.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/neighbor_allocator.cpp.o"
  "CMakeFiles/fap_core.dir/core/neighbor_allocator.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/newton_allocator.cpp.o"
  "CMakeFiles/fap_core.dir/core/newton_allocator.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/ring_model.cpp.o"
  "CMakeFiles/fap_core.dir/core/ring_model.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/single_file.cpp.o"
  "CMakeFiles/fap_core.dir/core/single_file.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/trace_export.cpp.o"
  "CMakeFiles/fap_core.dir/core/trace_export.cpp.o.d"
  "CMakeFiles/fap_core.dir/core/volume_model.cpp.o"
  "CMakeFiles/fap_core.dir/core/volume_model.cpp.o.d"
  "libfap_core.a"
  "libfap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
