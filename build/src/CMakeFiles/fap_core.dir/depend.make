# Empty dependencies file for fap_core.
# This may be replaced when dependencies are built.
