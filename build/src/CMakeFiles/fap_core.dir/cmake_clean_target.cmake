file(REMOVE_RECURSE
  "libfap_core.a"
)
