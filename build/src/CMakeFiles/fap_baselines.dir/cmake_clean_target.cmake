file(REMOVE_RECURSE
  "libfap_baselines.a"
)
