
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/branch_and_bound.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/branch_and_bound.cpp.o.d"
  "/root/repo/src/baselines/casey.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/casey.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/casey.cpp.o.d"
  "/root/repo/src/baselines/heuristics.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/heuristics.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/heuristics.cpp.o.d"
  "/root/repo/src/baselines/integral.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/integral.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/integral.cpp.o.d"
  "/root/repo/src/baselines/price_directed_fap.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/price_directed_fap.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/price_directed_fap.cpp.o.d"
  "/root/repo/src/baselines/projected_gradient.cpp" "src/CMakeFiles/fap_baselines.dir/baselines/projected_gradient.cpp.o" "gcc" "src/CMakeFiles/fap_baselines.dir/baselines/projected_gradient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
