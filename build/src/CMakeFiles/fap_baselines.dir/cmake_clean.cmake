file(REMOVE_RECURSE
  "CMakeFiles/fap_baselines.dir/baselines/branch_and_bound.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/branch_and_bound.cpp.o.d"
  "CMakeFiles/fap_baselines.dir/baselines/casey.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/casey.cpp.o.d"
  "CMakeFiles/fap_baselines.dir/baselines/heuristics.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/heuristics.cpp.o.d"
  "CMakeFiles/fap_baselines.dir/baselines/integral.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/integral.cpp.o.d"
  "CMakeFiles/fap_baselines.dir/baselines/price_directed_fap.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/price_directed_fap.cpp.o.d"
  "CMakeFiles/fap_baselines.dir/baselines/projected_gradient.cpp.o"
  "CMakeFiles/fap_baselines.dir/baselines/projected_gradient.cpp.o.d"
  "libfap_baselines.a"
  "libfap_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fap_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
