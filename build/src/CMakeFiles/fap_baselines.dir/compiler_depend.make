# Empty compiler generated dependencies file for fap_baselines.
# This may be replaced when dependencies are built.
