file(REMOVE_RECURSE
  "CMakeFiles/protocol_messages.dir/protocol_messages.cpp.o"
  "CMakeFiles/protocol_messages.dir/protocol_messages.cpp.o.d"
  "protocol_messages"
  "protocol_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
