# Empty compiler generated dependencies file for protocol_messages.
# This may be replaced when dependencies are built.
