# Empty dependencies file for fig5_alpha_sweep.
# This may be replaced when dependencies are built.
