file(REMOVE_RECURSE
  "CMakeFiles/ablation_joint_routing.dir/ablation_joint_routing.cpp.o"
  "CMakeFiles/ablation_joint_routing.dir/ablation_joint_routing.cpp.o.d"
  "ablation_joint_routing"
  "ablation_joint_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_joint_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
