file(REMOVE_RECURSE
  "CMakeFiles/fig3_convergence.dir/fig3_convergence.cpp.o"
  "CMakeFiles/fig3_convergence.dir/fig3_convergence.cpp.o.d"
  "fig3_convergence"
  "fig3_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
