file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_bound.dir/ablation_alpha_bound.cpp.o"
  "CMakeFiles/ablation_alpha_bound.dir/ablation_alpha_bound.cpp.o.d"
  "ablation_alpha_bound"
  "ablation_alpha_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
