# Empty dependencies file for ablation_alpha_bound.
# This may be replaced when dependencies are built.
