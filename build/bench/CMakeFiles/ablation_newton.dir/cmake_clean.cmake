file(REMOVE_RECURSE
  "CMakeFiles/ablation_newton.dir/ablation_newton.cpp.o"
  "CMakeFiles/ablation_newton.dir/ablation_newton.cpp.o.d"
  "ablation_newton"
  "ablation_newton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
