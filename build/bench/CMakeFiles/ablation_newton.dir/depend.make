# Empty dependencies file for ablation_newton.
# This may be replaced when dependencies are built.
