file(REMOVE_RECURSE
  "CMakeFiles/ablation_neighbor.dir/ablation_neighbor.cpp.o"
  "CMakeFiles/ablation_neighbor.dir/ablation_neighbor.cpp.o.d"
  "ablation_neighbor"
  "ablation_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
