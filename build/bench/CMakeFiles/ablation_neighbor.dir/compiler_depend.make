# Empty compiler generated dependencies file for ablation_neighbor.
# This may be replaced when dependencies are built.
