file(REMOVE_RECURSE
  "CMakeFiles/fig9_alpha_decay.dir/fig9_alpha_decay.cpp.o"
  "CMakeFiles/fig9_alpha_decay.dir/fig9_alpha_decay.cpp.o.d"
  "fig9_alpha_decay"
  "fig9_alpha_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alpha_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
