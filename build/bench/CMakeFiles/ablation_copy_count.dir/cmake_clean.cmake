file(REMOVE_RECURSE
  "CMakeFiles/ablation_copy_count.dir/ablation_copy_count.cpp.o"
  "CMakeFiles/ablation_copy_count.dir/ablation_copy_count.cpp.o.d"
  "ablation_copy_count"
  "ablation_copy_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copy_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
