# Empty dependencies file for ablation_copy_count.
# This may be replaced when dependencies are built.
