# Empty dependencies file for fig4_fragmentation.
# This may be replaced when dependencies are built.
