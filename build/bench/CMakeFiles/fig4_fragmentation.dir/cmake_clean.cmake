file(REMOVE_RECURSE
  "CMakeFiles/fig4_fragmentation.dir/fig4_fragmentation.cpp.o"
  "CMakeFiles/fig4_fragmentation.dir/fig4_fragmentation.cpp.o.d"
  "fig4_fragmentation"
  "fig4_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
