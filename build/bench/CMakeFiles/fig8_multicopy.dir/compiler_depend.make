# Empty compiler generated dependencies file for fig8_multicopy.
# This may be replaced when dependencies are built.
