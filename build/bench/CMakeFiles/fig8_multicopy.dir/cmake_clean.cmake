file(REMOVE_RECURSE
  "CMakeFiles/fig8_multicopy.dir/fig8_multicopy.cpp.o"
  "CMakeFiles/fig8_multicopy.dir/fig8_multicopy.cpp.o.d"
  "fig8_multicopy"
  "fig8_multicopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_multicopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
