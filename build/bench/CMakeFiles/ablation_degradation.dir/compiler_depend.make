# Empty compiler generated dependencies file for ablation_degradation.
# This may be replaced when dependencies are built.
