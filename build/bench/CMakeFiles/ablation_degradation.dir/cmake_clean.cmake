file(REMOVE_RECURSE
  "CMakeFiles/ablation_degradation.dir/ablation_degradation.cpp.o"
  "CMakeFiles/ablation_degradation.dir/ablation_degradation.cpp.o.d"
  "ablation_degradation"
  "ablation_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
