# Empty dependencies file for ablation_price_directed.
# This may be replaced when dependencies are built.
