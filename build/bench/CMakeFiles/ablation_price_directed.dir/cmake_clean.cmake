file(REMOVE_RECURSE
  "CMakeFiles/ablation_price_directed.dir/ablation_price_directed.cpp.o"
  "CMakeFiles/ablation_price_directed.dir/ablation_price_directed.cpp.o.d"
  "ablation_price_directed"
  "ablation_price_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_price_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
