# Empty dependencies file for validate_des.
# This may be replaced when dependencies are built.
