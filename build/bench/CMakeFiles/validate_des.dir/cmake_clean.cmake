file(REMOVE_RECURSE
  "CMakeFiles/validate_des.dir/validate_des.cpp.o"
  "CMakeFiles/validate_des.dir/validate_des.cpp.o.d"
  "validate_des"
  "validate_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
