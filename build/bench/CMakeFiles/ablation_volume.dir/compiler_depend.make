# Empty compiler generated dependencies file for ablation_volume.
# This may be replaced when dependencies are built.
