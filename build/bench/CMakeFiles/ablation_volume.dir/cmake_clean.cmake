file(REMOVE_RECURSE
  "CMakeFiles/ablation_volume.dir/ablation_volume.cpp.o"
  "CMakeFiles/ablation_volume.dir/ablation_volume.cpp.o.d"
  "ablation_volume"
  "ablation_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
