# Empty dependencies file for example_multicopy_ring.
# This may be replaced when dependencies are built.
