file(REMOVE_RECURSE
  "CMakeFiles/example_multicopy_ring.dir/multicopy_ring.cpp.o"
  "CMakeFiles/example_multicopy_ring.dir/multicopy_ring.cpp.o.d"
  "example_multicopy_ring"
  "example_multicopy_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multicopy_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
