# Empty compiler generated dependencies file for example_server_pools.
# This may be replaced when dependencies are built.
