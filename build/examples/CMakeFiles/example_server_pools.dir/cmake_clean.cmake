file(REMOVE_RECURSE
  "CMakeFiles/example_server_pools.dir/server_pools.cpp.o"
  "CMakeFiles/example_server_pools.dir/server_pools.cpp.o.d"
  "example_server_pools"
  "example_server_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_server_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
