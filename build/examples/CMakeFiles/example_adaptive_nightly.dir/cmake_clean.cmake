file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_nightly.dir/adaptive_nightly.cpp.o"
  "CMakeFiles/example_adaptive_nightly.dir/adaptive_nightly.cpp.o.d"
  "example_adaptive_nightly"
  "example_adaptive_nightly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_nightly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
