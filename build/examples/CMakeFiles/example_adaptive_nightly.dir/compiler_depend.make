# Empty compiler generated dependencies file for example_adaptive_nightly.
# This may be replaced when dependencies are built.
