# Empty dependencies file for example_datacenter_placement.
# This may be replaced when dependencies are built.
