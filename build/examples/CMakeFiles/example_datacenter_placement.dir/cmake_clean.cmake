file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_placement.dir/datacenter_placement.cpp.o"
  "CMakeFiles/example_datacenter_placement.dir/datacenter_placement.cpp.o.d"
  "example_datacenter_placement"
  "example_datacenter_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
