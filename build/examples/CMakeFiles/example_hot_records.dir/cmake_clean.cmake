file(REMOVE_RECURSE
  "CMakeFiles/example_hot_records.dir/hot_records.cpp.o"
  "CMakeFiles/example_hot_records.dir/hot_records.cpp.o.d"
  "example_hot_records"
  "example_hot_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hot_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
