# Empty compiler generated dependencies file for example_hot_records.
# This may be replaced when dependencies are built.
