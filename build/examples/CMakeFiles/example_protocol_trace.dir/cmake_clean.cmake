file(REMOVE_RECURSE
  "CMakeFiles/example_protocol_trace.dir/protocol_trace.cpp.o"
  "CMakeFiles/example_protocol_trace.dir/protocol_trace.cpp.o.d"
  "example_protocol_trace"
  "example_protocol_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protocol_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
