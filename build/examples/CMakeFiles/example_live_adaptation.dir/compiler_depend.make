# Empty compiler generated dependencies file for example_live_adaptation.
# This may be replaced when dependencies are built.
