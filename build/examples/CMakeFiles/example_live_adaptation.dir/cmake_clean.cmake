file(REMOVE_RECURSE
  "CMakeFiles/example_live_adaptation.dir/live_adaptation.cpp.o"
  "CMakeFiles/example_live_adaptation.dir/live_adaptation.cpp.o.d"
  "example_live_adaptation"
  "example_live_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
