file(REMOVE_RECURSE
  "CMakeFiles/example_economy.dir/economy.cpp.o"
  "CMakeFiles/example_economy.dir/economy.cpp.o.d"
  "example_economy"
  "example_economy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
