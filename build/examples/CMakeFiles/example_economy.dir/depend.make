# Empty dependencies file for example_economy.
# This may be replaced when dependencies are built.
