# Empty dependencies file for example_measurement_driven.
# This may be replaced when dependencies are built.
