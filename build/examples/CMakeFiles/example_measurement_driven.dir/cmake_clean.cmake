file(REMOVE_RECURSE
  "CMakeFiles/example_measurement_driven.dir/measurement_driven.cpp.o"
  "CMakeFiles/example_measurement_driven.dir/measurement_driven.cpp.o.d"
  "example_measurement_driven"
  "example_measurement_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_measurement_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
