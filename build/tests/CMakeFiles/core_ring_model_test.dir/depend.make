# Empty dependencies file for core_ring_model_test.
# This may be replaced when dependencies are built.
