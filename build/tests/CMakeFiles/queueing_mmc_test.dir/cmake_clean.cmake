file(REMOVE_RECURSE
  "CMakeFiles/queueing_mmc_test.dir/queueing_mmc_test.cpp.o"
  "CMakeFiles/queueing_mmc_test.dir/queueing_mmc_test.cpp.o.d"
  "queueing_mmc_test"
  "queueing_mmc_test.pdb"
  "queueing_mmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_mmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
