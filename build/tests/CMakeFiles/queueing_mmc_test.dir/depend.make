# Empty dependencies file for queueing_mmc_test.
# This may be replaced when dependencies are built.
