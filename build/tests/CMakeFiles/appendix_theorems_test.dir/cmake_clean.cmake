file(REMOVE_RECURSE
  "CMakeFiles/appendix_theorems_test.dir/appendix_theorems_test.cpp.o"
  "CMakeFiles/appendix_theorems_test.dir/appendix_theorems_test.cpp.o.d"
  "appendix_theorems_test"
  "appendix_theorems_test.pdb"
  "appendix_theorems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
