file(REMOVE_RECURSE
  "CMakeFiles/core_multicopy_test.dir/core_multicopy_test.cpp.o"
  "CMakeFiles/core_multicopy_test.dir/core_multicopy_test.cpp.o.d"
  "core_multicopy_test"
  "core_multicopy_test.pdb"
  "core_multicopy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multicopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
