# Empty dependencies file for core_multicopy_test.
# This may be replaced when dependencies are built.
