# Empty dependencies file for core_copy_count_test.
# This may be replaced when dependencies are built.
