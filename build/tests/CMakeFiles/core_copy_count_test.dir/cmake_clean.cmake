file(REMOVE_RECURSE
  "CMakeFiles/core_copy_count_test.dir/core_copy_count_test.cpp.o"
  "CMakeFiles/core_copy_count_test.dir/core_copy_count_test.cpp.o.d"
  "core_copy_count_test"
  "core_copy_count_test.pdb"
  "core_copy_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_copy_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
