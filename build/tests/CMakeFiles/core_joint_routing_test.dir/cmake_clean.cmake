file(REMOVE_RECURSE
  "CMakeFiles/core_joint_routing_test.dir/core_joint_routing_test.cpp.o"
  "CMakeFiles/core_joint_routing_test.dir/core_joint_routing_test.cpp.o.d"
  "core_joint_routing_test"
  "core_joint_routing_test.pdb"
  "core_joint_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_joint_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
