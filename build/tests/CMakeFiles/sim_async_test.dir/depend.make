# Empty dependencies file for sim_async_test.
# This may be replaced when dependencies are built.
