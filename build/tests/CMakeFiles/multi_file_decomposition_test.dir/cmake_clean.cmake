file(REMOVE_RECURSE
  "CMakeFiles/multi_file_decomposition_test.dir/multi_file_decomposition_test.cpp.o"
  "CMakeFiles/multi_file_decomposition_test.dir/multi_file_decomposition_test.cpp.o.d"
  "multi_file_decomposition_test"
  "multi_file_decomposition_test.pdb"
  "multi_file_decomposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_file_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
