# Empty dependencies file for multi_file_decomposition_test.
# This may be replaced when dependencies are built.
