# Empty compiler generated dependencies file for sim_estimation_test.
# This may be replaced when dependencies are built.
