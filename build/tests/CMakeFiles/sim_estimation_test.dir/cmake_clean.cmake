file(REMOVE_RECURSE
  "CMakeFiles/sim_estimation_test.dir/sim_estimation_test.cpp.o"
  "CMakeFiles/sim_estimation_test.dir/sim_estimation_test.cpp.o.d"
  "sim_estimation_test"
  "sim_estimation_test.pdb"
  "sim_estimation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
