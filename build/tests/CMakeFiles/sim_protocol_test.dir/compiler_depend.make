# Empty compiler generated dependencies file for sim_protocol_test.
# This may be replaced when dependencies are built.
