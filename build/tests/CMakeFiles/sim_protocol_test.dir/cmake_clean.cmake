file(REMOVE_RECURSE
  "CMakeFiles/sim_protocol_test.dir/sim_protocol_test.cpp.o"
  "CMakeFiles/sim_protocol_test.dir/sim_protocol_test.cpp.o.d"
  "sim_protocol_test"
  "sim_protocol_test.pdb"
  "sim_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
