file(REMOVE_RECURSE
  "CMakeFiles/sim_des_test.dir/sim_des_test.cpp.o"
  "CMakeFiles/sim_des_test.dir/sim_des_test.cpp.o.d"
  "sim_des_test"
  "sim_des_test.pdb"
  "sim_des_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
