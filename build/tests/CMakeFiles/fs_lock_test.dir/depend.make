# Empty dependencies file for fs_lock_test.
# This may be replaced when dependencies are built.
