file(REMOVE_RECURSE
  "CMakeFiles/fs_lock_test.dir/fs_lock_test.cpp.o"
  "CMakeFiles/fs_lock_test.dir/fs_lock_test.cpp.o.d"
  "fs_lock_test"
  "fs_lock_test.pdb"
  "fs_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
