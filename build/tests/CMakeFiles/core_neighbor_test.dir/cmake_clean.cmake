file(REMOVE_RECURSE
  "CMakeFiles/core_neighbor_test.dir/core_neighbor_test.cpp.o"
  "CMakeFiles/core_neighbor_test.dir/core_neighbor_test.cpp.o.d"
  "core_neighbor_test"
  "core_neighbor_test.pdb"
  "core_neighbor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_neighbor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
