# Empty dependencies file for core_neighbor_test.
# This may be replaced when dependencies are built.
