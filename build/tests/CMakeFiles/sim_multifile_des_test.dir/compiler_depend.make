# Empty compiler generated dependencies file for sim_multifile_des_test.
# This may be replaced when dependencies are built.
