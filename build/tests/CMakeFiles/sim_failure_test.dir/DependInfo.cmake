
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_failure_test.cpp" "tests/CMakeFiles/sim_failure_test.dir/sim_failure_test.cpp.o" "gcc" "tests/CMakeFiles/sim_failure_test.dir/sim_failure_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fap_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
