file(REMOVE_RECURSE
  "CMakeFiles/sim_failure_test.dir/sim_failure_test.cpp.o"
  "CMakeFiles/sim_failure_test.dir/sim_failure_test.cpp.o.d"
  "sim_failure_test"
  "sim_failure_test.pdb"
  "sim_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
