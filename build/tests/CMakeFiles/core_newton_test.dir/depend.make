# Empty dependencies file for core_newton_test.
# This may be replaced when dependencies are built.
