file(REMOVE_RECURSE
  "CMakeFiles/core_newton_test.dir/core_newton_test.cpp.o"
  "CMakeFiles/core_newton_test.dir/core_newton_test.cpp.o.d"
  "core_newton_test"
  "core_newton_test.pdb"
  "core_newton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_newton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
