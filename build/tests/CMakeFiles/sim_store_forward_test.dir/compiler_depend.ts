# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_store_forward_test.
