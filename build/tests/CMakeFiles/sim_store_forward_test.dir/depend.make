# Empty dependencies file for sim_store_forward_test.
# This may be replaced when dependencies are built.
