file(REMOVE_RECURSE
  "CMakeFiles/sim_store_forward_test.dir/sim_store_forward_test.cpp.o"
  "CMakeFiles/sim_store_forward_test.dir/sim_store_forward_test.cpp.o.d"
  "sim_store_forward_test"
  "sim_store_forward_test.pdb"
  "sim_store_forward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_store_forward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
