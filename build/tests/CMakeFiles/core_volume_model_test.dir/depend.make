# Empty dependencies file for core_volume_model_test.
# This may be replaced when dependencies are built.
